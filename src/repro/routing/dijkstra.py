"""The library's one Dijkstra: a resumable, replayable traversal.

Every shortest-path consumer in the repository — the local visibility
graph's ``dijkstra_order`` (which CPLC, IOR and the ONN/range scans drive),
the full-graph reference oracle of :mod:`repro.obstacles.obstructed`, and
the FULL baseline of :mod:`repro.baselines.global_vg` — runs on this class,
so there is exactly one implementation of the expansion loop to test and
optimize.

Two properties make it more than a plain loop:

* **Resumable.**  A consumer that stops early (an early-terminating
  ``shortest_distances``, Lemma 7's CPLC cutoff) leaves the heap and
  tentative distances intact; the next consumer continues expanding from
  the frontier instead of restarting.
* **Replayable.**  The settled prefix is recorded in order, so repeated
  traversals from the same source over an unchanged graph replay the
  memoized shortest-path tree for free.  Validity across graph mutations
  is the *owner's* responsibility: the visibility graph stamps each
  traversal with its mutation generation and discards mismatches.
"""

from __future__ import annotations

import heapq
import math
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from .heap import _MIN_RUN, BulkRowHeap

_SCALAR_RELAX = 8
"""Row length below which element-wise relaxation beats the vectorized
compare-and-assign.  Both paths perform the identical float operations in
the identical order, so the constant — like ``_MIN_RUN`` — is purely a
performance knob; warm-corridor rows average ~5 improved neighbors, well
inside it."""

Adjacency = Callable[[int], Mapping[int, float]]
"""Lazily supplied adjacency: node -> {neighbor: edge weight}."""

ArrayAdjacency = Callable[[int], Tuple[np.ndarray, np.ndarray]]
"""Lazily supplied flat adjacency: node -> (neighbor ids, edge weights)."""

SettledEntry = Tuple[float, int, Optional[int]]
"""One settled node: ``(distance, node, shortest-path predecessor)``."""


class _ReplayCore:
    """Replay-then-extend iteration shared by both traversal engines."""

    __slots__ = ()

    settled: List[SettledEntry]

    def advance(self) -> Optional[SettledEntry]:  # pragma: no cover
        raise NotImplementedError

    def order(self, on_advance: Optional[Callable[[SettledEntry], None]]
              = None) -> Iterator[SettledEntry]:
        """Yield ``(dist, node, pred)`` ascending: replay, then extend.

        Multiple iterators over one traversal are safe: each keeps its own
        replay cursor, and whichever reaches the frontier first extends the
        shared settled prefix for the others.

        Args:
            on_advance: invoked once per *freshly settled* node (replayed
                prefix entries excluded) — the owner's counter hook.
        """
        i = 0
        while True:
            if i < len(self.settled):
                yield self.settled[i]
                i += 1
            else:
                entry = self.advance()
                if entry is None:
                    # Another consumer may have settled the tail between
                    # our length check and the (locked) advance; drain the
                    # replay cursor before concluding exhaustion, or those
                    # entries would be silently dropped.
                    if i < len(self.settled):
                        continue
                    return
                if on_advance is not None:
                    on_advance(entry)

    def run_to_completion(self) -> None:
        """Settle every reachable node (the classic eager Dijkstra)."""
        while self.advance() is not None:
            pass


class Traversal(_ReplayCore):
    """A single-source best-first expansion with a memoized settled prefix.

    Args:
        neighbors: adjacency callback, invoked once per settled node (so
            lazily materialized rows are only paid for nodes the traversal
            actually reaches).
        source: the source node.
        skip: optional predicate; neighbors for which it returns True are
            never relaxed (the visibility graph uses it to exclude
            removed transient nodes).
        prune_bound: with ``heur``, goal-directed relaxation pruning: a
            settled node with ``dist + heur[node] >= prune_bound`` records
            its entry but relaxes nothing.  ``heur`` must be an admissible
            per-node lower bound on the remaining distance to the goal the
            caller cares about; the safe set ``dist + heur < prune_bound``
            is then prefix-closed along shortest paths (triangle
            inequality), so every node in it keeps its exact Dijkstra
            distance, predecessor and settled position, while nodes outside
            it may settle late, inflated, or never — callers must treat
            ``dist + heur >= prune_bound`` results as "beyond the bound".
        stamp: opaque validity token recorded for the owner; the traversal
            itself never inspects it.
    """

    __slots__ = ("_neighbors", "_skip", "source", "dist", "pred",
                 "settled", "_heap", "_done", "stamp", "_lock",
                 "prune_bound", "_heur")

    def __init__(self, neighbors: Adjacency, source: int,
                 skip: Optional[Callable[[int], bool]] = None,
                 prune_bound: float = math.inf,
                 heur: Optional[np.ndarray] = None,
                 stamp: Any = None):
        self._neighbors = neighbors
        self._skip = skip
        self.source = source
        self.dist: Dict[int, float] = {source: 0.0}
        self.pred: Dict[int, Optional[int]] = {source: None}
        self.settled: List[SettledEntry] = []
        self._heap: List[Tuple[float, int]] = [(0.0, source)]
        self._done: set = set()
        self.prune_bound = prune_bound
        self._heur = heur if prune_bound < math.inf else None
        self.stamp = stamp
        self._lock = threading.Lock()

    @property
    def exhausted(self) -> bool:
        """True when no frontier remains (every reachable node settled)."""
        return not self._heap

    def advance(self) -> Optional[SettledEntry]:
        """Settle and record the next node; ``None`` when exhausted.

        Serialized by a per-traversal lock: a memoized traversal can be
        replayed-and-extended by several consumers (the settled prefix is
        the shared asset), and two threads racing the frontier would
        otherwise pop the heap and grow ``settled`` inconsistently.  The
        replay path of :meth:`order` stays lock-free — it only reads the
        append-only settled prefix.
        """
        skip = self._skip
        with self._lock:
            while self._heap:
                d, node = heapq.heappop(self._heap)
                if node in self._done:
                    continue
                self._done.add(node)
                entry = (d, node, self.pred[node])
                self.settled.append(entry)
                heur = self._heur
                if heur is not None and node < heur.size \
                        and d + heur[node] >= self.prune_bound:
                    return entry
                for nbr, w in self._neighbors(node).items():
                    if skip is not None and skip(nbr):
                        continue
                    nd = d + w
                    if nd < self.dist.get(nbr, math.inf):
                        self.dist[nbr] = nd
                        self.pred[nbr] = node
                        heapq.heappush(self._heap, (nd, nbr))
                return entry
            return None


class ArrayTraversal(_ReplayCore):
    """The array-backed engine behind the same resumable/replayable API.

    Semantically identical to :class:`Traversal` — same settled order, same
    distances, same predecessors, bit for bit — but the per-node state lives
    in preallocated numpy arrays instead of dicts, and a whole adjacency row
    is relaxed in one vectorized pass.  Identity holds because a binary
    heap's pop sequence is determined by the multiset of pushed ``(d, node)``
    pairs (not their push order), relaxation uses the same strict ``<`` on
    the same IEEE doubles, and each neighbor appears at most once per row so
    the vectorized compare-and-assign matches the scalar loop exactly.  The
    frontier is split by row length: short relaxed rows go straight into a
    plain C-``heapq`` list (per-element pushes are fastest below
    ``heap._MIN_RUN`` entries), long rows into a
    :class:`~repro.routing.heap.BulkRowHeap` sequence heap as one sorted
    run.  Each pop takes the lexicographically smaller of the two tops
    (ties favor the plain heap — equal pairs are interchangeable), so the
    combined structure still surfaces the multiset minimum and the settle
    order stays identical to a single binary heap.

    Args:
        rows: flat adjacency callback: node -> ``(indices, weights)``
            arrays, invoked once per settled node.
        source: the source node.
        size: node-slot capacity to preallocate; the arrays grow on demand
            when the owning graph adds slots mid-traversal.
        alive: optional callback returning the owner's current alive mask
            (the array engine's equivalent of the scalar ``skip``
            predicate); neighbors dead at relaxation time are not relaxed.
        prune_bound: goal-directed relaxation pruning, identical in
            semantics to :class:`Traversal`'s (see there).
        on_bulk_push: optional no-arg hook invoked once per bulk row push
            (the owner's ``heap_bulk_pushes`` counter).
        stamp: opaque validity token recorded for the owner.
        prefetch: optional hook ``prefetch(node, frontier)`` invoked right
            before each settled node's row read; ``frontier()`` lazily
            yields the not-yet-settled frontier node ids nearest-first, so
            the owner can materialize adjacency rows for the whole top of
            the heap in one batched pass.  Purely a materialization hint —
            the traversal's own state is untouched, so settle order,
            distances and predecessors are unchanged.
    """

    __slots__ = ("_rows", "_alive", "source", "dist", "pred", "settled",
                 "_heap", "_runs", "_done", "stamp", "_lock", "prune_bound",
                 "_heur", "_on_bulk_push", "_prefetch")

    def __init__(self, rows: ArrayAdjacency, source: int, size: int,
                 alive: Optional[Callable[[], np.ndarray]] = None,
                 prune_bound: float = math.inf,
                 heur: Optional[np.ndarray] = None,
                 on_bulk_push: Optional[Callable[[], None]] = None,
                 stamp: Any = None,
                 prefetch: Optional[Callable[
                     [int, Callable[[], List[int]]], None]] = None):
        self._rows = rows
        self._alive = alive
        self._on_bulk_push = on_bulk_push
        self._prefetch = prefetch
        self.prune_bound = prune_bound
        self._heur = heur if prune_bound < math.inf else None
        self.source = source
        n = max(size, source + 1)
        self.dist = np.full(n, np.inf, dtype=np.float64)
        self.dist[source] = 0.0
        self.pred = np.full(n, -1, dtype=np.int64)
        self.settled: List[SettledEntry] = []
        self._heap: List[Tuple[float, int]] = [(0.0, source)]
        self._runs = BulkRowHeap()
        self._done = np.zeros(n, dtype=bool)
        self.stamp = stamp
        self._lock = threading.Lock()

    @property
    def exhausted(self) -> bool:
        """True when no frontier remains (every reachable node settled)."""
        return not self._heap and not self._runs

    def _grow(self, n: int) -> None:
        old = self.dist.size
        dist = np.full(n, np.inf, dtype=np.float64)
        dist[:old] = self.dist
        self.dist = dist
        pred = np.full(n, -1, dtype=np.int64)
        pred[:old] = self.pred
        self.pred = pred
        done = np.zeros(n, dtype=bool)
        done[:old] = self._done
        self._done = done

    def _frontier_ids(self, cap: int = 64) -> List[int]:
        """Not-yet-settled frontier node ids, nearest (tentative) first.

        The prefetch hook's view of the heap top: entries from the plain
        heap, the run heads, and a bounded prefix of each run's tail,
        sorted by ``(dist, node)`` and deduplicated.  Advisory only — a
        stale entry (node already improved elsewhere) merely wastes a
        prefetch slot.  Called from inside :meth:`advance` (lock already
        held), so it must not lock.
        """
        done = self._done
        cand: List[Tuple[float, int]] = [
            (d, v) for d, v in self._heap if not done[v]]
        runs = self._runs
        for d, v, _rid in runs._heads:
            if not done[v]:
                cand.append((d, v))
        for dl, nl, cursor in runs._runs.values():
            for j in range(cursor + 1, min(cursor + 1 + cap, len(dl))):
                v = nl[j]
                if not done[v]:
                    cand.append((dl[j], v))
        cand.sort()
        out: List[int] = []
        seen = set()
        for _d, v in cand:
            if v not in seen:
                seen.add(v)
                out.append(v)
                if len(out) >= cap:
                    break
        return out

    def advance(self) -> Optional[SettledEntry]:
        """Settle and record the next node; ``None`` when exhausted.

        Locking mirrors :meth:`Traversal.advance`: the settled prefix is
        the shared asset, replay stays lock-free.
        """
        with self._lock:
            heap = self._heap
            runs = self._runs
            heappop = heapq.heappop
            while heap or runs._len:
                # The run heap's entries are (dist, node, rid) while the
                # plain heap holds (dist, node): on an exact (dist, node)
                # tie the longer tuple compares greater, which is the same
                # "tie favors the plain heap" rule BulkRowHeap.peek gives —
                # so comparing the raw head entries inline is decision-
                # identical while skipping two method calls per pop.
                # _heads/_runs are re-read each pass because push_row may
                # compact (reassigning both) between pops.
                if runs._len and (not heap or runs._heads[0] < heap[0]):
                    rheads = runs._heads
                    d, node, rid = heappop(rheads)
                    if rid >= 0:
                        run = runs._runs[rid]
                        cursor = run[2] + 1
                        dl = run[0]
                        if cursor < len(dl):
                            run[2] = cursor
                            heapq.heappush(
                                rheads, (dl[cursor], run[1][cursor], rid))
                        else:
                            del runs._runs[rid]
                    runs._len -= 1
                else:
                    d, node = heappop(heap)
                if self._done[node]:
                    continue
                self._done[node] = True
                p = self.pred[node]
                entry = (d, node, None if p < 0 else int(p))
                self.settled.append(entry)
                heur = self._heur
                if heur is not None and node < heur.size \
                        and d + heur[node] >= self.prune_bound:
                    return entry
                if self._prefetch is not None:
                    self._prefetch(node, self._frontier_ids)
                idx, w = self._rows(node)
                mask = self._alive() if self._alive is not None else None
                if mask is not None and mask.size > self.dist.size:
                    self._grow(mask.size)
                m = idx.size
                if m:
                    if m < _SCALAR_RELAX:
                        # Tiny row: relax element-wise in Python.  Same
                        # float adds, same comparisons, same push order as
                        # the vectorized path (heap entries stay native
                        # floats), but without ~8 numpy dispatches that
                        # dominate the cost at this size.
                        il = idx.tolist()
                        if mask is None:
                            hi = max(il)
                            if hi >= self.dist.size:
                                self._grow(hi + 1)
                        dist = self.dist
                        pred = self.pred
                        push = heapq.heappush
                        for iv, wv in zip(il, w.tolist()):
                            dv = d + wv
                            if dv < dist[iv] and \
                                    (mask is None or mask[iv]):
                                dist[iv] = dv
                                pred[iv] = node
                                push(heap, (dv, iv))
                        return entry
                    if mask is None:
                        # No owner mask to size against: bound-check the
                        # row itself.  (With a mask, the owner's mirrors
                        # cover every node id a row can contain, so the
                        # grow above already guarantees capacity.)
                        hi = int(idx.max())
                        if hi >= self.dist.size:
                            self._grow(hi + 1)
                    nd = d + w
                    improved = nd < self.dist[idx]
                    if mask is not None:
                        improved &= mask[idx]
                    ii = idx[improved]
                    if ii.size:
                        vv = nd[improved]
                        self.dist[ii] = vv
                        self.pred[ii] = node
                        if ii.size < _MIN_RUN:
                            push = heapq.heappush
                            for dv, iv in zip(vv.tolist(), ii.tolist()):
                                push(heap, (dv, iv))
                        else:
                            runs.push_row(vv, ii)
                            if self._on_bulk_push is not None:
                                self._on_bulk_push()
                return entry
            return None


def dijkstra_all(adj: List[Mapping[int, float]], source: int
                 ) -> Tuple[List[float], List[int]]:
    """Eager single-source shortest paths over a dense adjacency list.

    The drop-in replacement for the reference oracle's historical private
    Dijkstra: returns ``(dist, pred)`` arrays indexed by node, with ``inf``
    / ``-1`` for unreachable nodes.
    """
    t = Traversal(adj.__getitem__, source)
    t.run_to_completion()
    n = len(adj)
    dist = [t.dist.get(i, math.inf) for i in range(n)]
    pred = [-1] * n
    for i in range(n):
        p = t.pred.get(i)
        if p is not None:
            pred[i] = p
    return dist, pred
