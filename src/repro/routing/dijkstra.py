"""The library's one Dijkstra: a resumable, replayable traversal.

Every shortest-path consumer in the repository — the local visibility
graph's ``dijkstra_order`` (which CPLC, IOR and the ONN/range scans drive),
the full-graph reference oracle of :mod:`repro.obstacles.obstructed`, and
the FULL baseline of :mod:`repro.baselines.global_vg` — runs on this class,
so there is exactly one implementation of the expansion loop to test and
optimize.

Two properties make it more than a plain loop:

* **Resumable.**  A consumer that stops early (an early-terminating
  ``shortest_distances``, Lemma 7's CPLC cutoff) leaves the heap and
  tentative distances intact; the next consumer continues expanding from
  the frontier instead of restarting.
* **Replayable.**  The settled prefix is recorded in order, so repeated
  traversals from the same source over an unchanged graph replay the
  memoized shortest-path tree for free.  Validity across graph mutations
  is the *owner's* responsibility: the visibility graph stamps each
  traversal with its mutation generation and discards mismatches.
"""

from __future__ import annotations

import heapq
import math
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

Adjacency = Callable[[int], Mapping[int, float]]
"""Lazily supplied adjacency: node -> {neighbor: edge weight}."""

SettledEntry = Tuple[float, int, Optional[int]]
"""One settled node: ``(distance, node, shortest-path predecessor)``."""


class Traversal:
    """A single-source best-first expansion with a memoized settled prefix.

    Args:
        neighbors: adjacency callback, invoked once per settled node (so
            lazily materialized rows are only paid for nodes the traversal
            actually reaches).
        source: the source node.
        skip: optional predicate; neighbors for which it returns True are
            never relaxed (the visibility graph uses it to exclude
            removed transient nodes).
        stamp: opaque validity token recorded for the owner; the traversal
            itself never inspects it.
    """

    __slots__ = ("_neighbors", "_skip", "source", "dist", "pred",
                 "settled", "_heap", "_done", "stamp", "_lock")

    def __init__(self, neighbors: Adjacency, source: int,
                 skip: Optional[Callable[[int], bool]] = None,
                 stamp: Any = None):
        self._neighbors = neighbors
        self._skip = skip
        self.source = source
        self.dist: Dict[int, float] = {source: 0.0}
        self.pred: Dict[int, Optional[int]] = {source: None}
        self.settled: List[SettledEntry] = []
        self._heap: List[Tuple[float, int]] = [(0.0, source)]
        self._done: set = set()
        self.stamp = stamp
        self._lock = threading.Lock()

    @property
    def exhausted(self) -> bool:
        """True when no frontier remains (every reachable node settled)."""
        return not self._heap

    def advance(self) -> Optional[SettledEntry]:
        """Settle and record the next node; ``None`` when exhausted.

        Serialized by a per-traversal lock: a memoized traversal can be
        replayed-and-extended by several consumers (the settled prefix is
        the shared asset), and two threads racing the frontier would
        otherwise pop the heap and grow ``settled`` inconsistently.  The
        replay path of :meth:`order` stays lock-free — it only reads the
        append-only settled prefix.
        """
        skip = self._skip
        with self._lock:
            while self._heap:
                d, node = heapq.heappop(self._heap)
                if node in self._done:
                    continue
                self._done.add(node)
                entry = (d, node, self.pred[node])
                self.settled.append(entry)
                for nbr, w in self._neighbors(node).items():
                    if skip is not None and skip(nbr):
                        continue
                    nd = d + w
                    if nd < self.dist.get(nbr, math.inf):
                        self.dist[nbr] = nd
                        self.pred[nbr] = node
                        heapq.heappush(self._heap, (nd, nbr))
                return entry
            return None

    def order(self, on_advance: Optional[Callable[[SettledEntry], None]]
              = None) -> Iterator[SettledEntry]:
        """Yield ``(dist, node, pred)`` ascending: replay, then extend.

        Multiple iterators over one traversal are safe: each keeps its own
        replay cursor, and whichever reaches the frontier first extends the
        shared settled prefix for the others.

        Args:
            on_advance: invoked once per *freshly settled* node (replayed
                prefix entries excluded) — the owner's counter hook.
        """
        i = 0
        while True:
            if i < len(self.settled):
                yield self.settled[i]
                i += 1
            else:
                entry = self.advance()
                if entry is None:
                    # Another consumer may have settled the tail between
                    # our length check and the (locked) advance; drain the
                    # replay cursor before concluding exhaustion, or those
                    # entries would be silently dropped.
                    if i < len(self.settled):
                        continue
                    return
                if on_advance is not None:
                    on_advance(entry)

    def run_to_completion(self) -> None:
        """Settle every reachable node (the classic eager Dijkstra)."""
        while self.advance() is not None:
            pass


def dijkstra_all(adj: List[Mapping[int, float]], source: int
                 ) -> Tuple[List[float], List[int]]:
    """Eager single-source shortest paths over a dense adjacency list.

    The drop-in replacement for the reference oracle's historical private
    Dijkstra: returns ``(dist, pred)`` arrays indexed by node, with ``inf``
    / ``-1`` for unreachable nodes.
    """
    t = Traversal(adj.__getitem__, source)
    t.run_to_completion()
    n = len(adj)
    dist = [t.dist.get(i, math.inf) for i in range(n)]
    pred = [-1] * n
    for i in range(n):
        p = t.pred.get(i)
        if p is not None:
            pred[i] = p
    return dist, pred
