"""Routing subsystem: pluggable obstructed-distance backends.

The obstructed-distance substrate — visibility graph plus Dijkstra — is
where OkNN engines spend their time, and the right substrate depends on
the workload: a cold one-shot wants a minimal throwaway graph, a warm
workspace answering correlated queries (batches, monitors, trajectories)
wants one persistent graph whose expensive visibility tests amortize
across every query.  This package makes the choice a first-class, planner
-selectable decision behind one protocol:

* :class:`ObstructedDistanceBackend` — the protocol
  (``attach_endpoints`` / ``shortest_distances`` / ``dijkstra_order`` /
  ``note_obstacle_insert`` / ``note_obstacle_remove`` / ``stats``);
* :class:`PerQueryVGBackend` — a fresh local visibility graph per query
  (the seed algorithm's behavior, bit-for-bit);
* :class:`SharedVGBackend` — the workspace-shared incremental visibility
  graph, patched by announced updates and version-guarded against
  unannounced index mutations;
* :class:`VGSession` — the engine-facing view of one query's graph;
* :class:`~repro.routing.dijkstra.Traversal` — the library's single
  resumable Dijkstra implementation (the engines, the reference oracle
  and the FULL baseline all run on it);
* :class:`~repro.routing.stats.BackendStats` — the counter block that
  attributes query time to graph build vs Dijkstra vs visibility tests.
"""

from .stats import BackendStats
from .config import (
    ARRAY_ENGINE,
    DEFAULT_ROUTING,
    SCALAR_ENGINE,
    SCALAR_ROUTING,
    RoutingConfig,
)
from .dijkstra import ArrayTraversal, Traversal, dijkstra_all
from .backends import (
    PER_QUERY_VG,
    SHARED_VG,
    ObstructedDistanceBackend,
    ObstructedGraph,
    PerQueryVGBackend,
    SharedVGBackend,
    VGSession,
)

__all__ = [
    "ARRAY_ENGINE",
    "ArrayTraversal",
    "BackendStats",
    "DEFAULT_ROUTING",
    "ObstructedDistanceBackend",
    "ObstructedGraph",
    "PER_QUERY_VG",
    "PerQueryVGBackend",
    "RoutingConfig",
    "SCALAR_ENGINE",
    "SCALAR_ROUTING",
    "SharedVGBackend",
    "SHARED_VG",
    "Traversal",
    "VGSession",
    "dijkstra_all",
]
