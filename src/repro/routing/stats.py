"""Counters attributing obstructed-distance work to its routing backend.

One :class:`BackendStats` block lives on every backend (cumulative across
the workspace's lifetime) and another on every
:class:`~repro.core.stats.QueryStats` (that query's share), so warm/cold
benchmarks can attribute time to graph build vs Dijkstra vs visibility
tests without instrumenting the engine.

This module is deliberately import-free within the package: it is the
bottom of the routing dependency stack (``core.stats`` imports it).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BackendStats:
    """Work performed by an obstructed-distance backend.

    The split mirrors where OkNN engines actually spend their time (Zhao
    et al. 2018): building the distance substrate (``graphs_built`` /
    ``build_time_s``), traversing it (``dijkstra_runs`` /
    ``nodes_settled``), and testing sight lines (``visibility_tests``).
    """

    sessions: int = 0
    """Query endpoint attachments served (one per executed query leg)."""

    graphs_built: int = 0
    """Full visibility-graph constructions (the cost a shared backend
    amortizes away: per-query backends pay one per session)."""

    graph_reuses: int = 0
    """Sessions served by an already-built workspace-shared graph."""

    graph_spawns: int = 0
    """Extra shared graphs built from the obstacle cache for *concurrent*
    sessions (every resident graph was busy when the session attached).
    Each spawn is also counted in ``graphs_built``."""

    graph_clones: int = 0
    """Shared graphs replicated from the primary skeleton — cached
    adjacency rows included — to pre-provision a parallel worker pool."""

    build_time_s: float = 0.0
    """Wall-clock time spent constructing/seeding visibility graphs."""

    dijkstra_runs: int = 0
    """Fresh single-source traversals started (no memoized tree to serve)."""

    dijkstra_replays: int = 0
    """Traversals answered by replaying/resuming a memoized
    shortest-path tree of an already-settled source."""

    nodes_settled: int = 0
    """Graph nodes settled by fresh traversal work (replays excluded)."""

    visibility_tests: int = 0
    """Sight-line tests performed while adjacency rows materialized."""

    batch_visibility_calls: int = 0
    """Batched visibility-kernel launches (array engine: one per
    materialized row, repair step, or transient visibility column)."""

    batched_edges_tested: int = 0
    """Candidate-edge x obstacle-primitive pairs evaluated inside batched
    kernel launches (the array engine's share of ``visibility_tests``)."""

    kernel_pruned_edges: int = 0
    """Candidate-edge x primitive pairs the batch kernel's bbox prefilter
    skipped without evaluating (provably non-blocking: padded AABBs
    disjoint).  Not counted in ``batched_edges_tested``."""

    heap_bulk_pushes: int = 0
    """Relaxed adjacency rows long enough to enter the array engine's
    sequence heap as one sorted run (shorter rows push per-element, which
    profiles faster below ~16 entries)."""

    array_traversals: int = 0
    """Fresh traversals run on the array-backed Dijkstra engine (0 under
    the scalar parity oracle)."""

    rows_bulk_materialized: int = 0
    """Adjacency rows cut by the bulk path (``materialize_rows``: eager
    ``build_all`` seeding and frontier-prefetch waves) rather than one
    kernel launch per settled node."""

    bulk_pair_launches: int = 0
    """Batched kernel launches issued by the bulk materialization /
    repair paths, each covering the concatenated candidate pairs of many
    rows (also counted in ``batch_visibility_calls``)."""

    removal_repairs: int = 0
    """Announced obstacle removals absorbed by surgically repairing a
    resident graph in place (nodes deleted, re-opened sight lines
    re-tested) instead of dropping it (``evicted``)."""

    repair_retested_pairs: int = 0
    """Absent (source, target) pairs re-tested by removal repairs: pairs
    not currently visible whose sight segment's bbox overlaps a removed
    obstacle's padded bbox (the only pairs removal can re-open)."""

    patched: int = 0
    """Announced obstacle inserts patched into a shared graph in place."""

    evicted: int = 0
    """Announced obstacle removals that dropped the shared graph (vertex
    removal cannot be proven sound in place; the graph rebuilds lazily)."""

    invalidations: int = 0
    """Shared graphs dropped by the version guard (unannounced obstacle
    tree mutations observed at attach time)."""

    compactions: int = 0
    """In-place compactions of a shared graph's dead node slots (cached
    adjacency rows survive; only node ids are remapped)."""

    @property
    def replay_rate(self) -> float:
        """Fraction of traversals served from memoized shortest-path trees."""
        total = self.dijkstra_runs + self.dijkstra_replays
        return self.dijkstra_replays / total if total else 0.0

    def merge(self, other: "BackendStats") -> None:
        """Accumulate another block's counters into this one."""
        self.sessions += other.sessions
        self.graphs_built += other.graphs_built
        self.graph_reuses += other.graph_reuses
        self.graph_spawns += other.graph_spawns
        self.graph_clones += other.graph_clones
        self.build_time_s += other.build_time_s
        self.dijkstra_runs += other.dijkstra_runs
        self.dijkstra_replays += other.dijkstra_replays
        self.nodes_settled += other.nodes_settled
        self.visibility_tests += other.visibility_tests
        self.batch_visibility_calls += other.batch_visibility_calls
        self.batched_edges_tested += other.batched_edges_tested
        self.kernel_pruned_edges += other.kernel_pruned_edges
        self.heap_bulk_pushes += other.heap_bulk_pushes
        self.array_traversals += other.array_traversals
        self.rows_bulk_materialized += other.rows_bulk_materialized
        self.bulk_pair_launches += other.bulk_pair_launches
        self.removal_repairs += other.removal_repairs
        self.repair_retested_pairs += other.repair_retested_pairs
        self.patched += other.patched
        self.evicted += other.evicted
        self.invalidations += other.invalidations
        self.compactions += other.compactions
