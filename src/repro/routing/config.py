"""Configuration of the obstructed-distance substrate.

:class:`RoutingConfig` selects which *engine* runs under the (frozen)
graph/traversal API: the array-native hot path or the scalar dict
implementation.  Both produce byte-identical answers — same distances,
same predecessors, same settled order — so the scalar engine survives as
the parity oracle the Hypothesis suite checks the array engine against,
and as the fallback while debugging kernel-level changes.

Like :mod:`repro.routing.stats`, this module sits at the bottom of the
routing dependency stack and imports nothing from the package.
"""

from __future__ import annotations

from dataclasses import dataclass

ARRAY_ENGINE = "array"
"""Flat CSR-style adjacency + batched kernels + array-backed Dijkstra."""

SCALAR_ENGINE = "scalar"
"""Dict-of-dict adjacency + per-chunk kernels + dict-backed Dijkstra."""

_ENGINES = (ARRAY_ENGINE, SCALAR_ENGINE)


@dataclass(frozen=True)
class RoutingConfig:
    """How the distance substrate executes (not *what* it computes).

    Args:
        engine: ``"array"`` (default) for the array-native hot path —
            batched visibility kernels, flat adjacency rows, vectorized
            Dijkstra relaxation — or ``"scalar"`` for the original
            dict-based implementation.  Answers are byte-identical either
            way; only speed and the batch counters in
            :class:`~repro.routing.stats.BackendStats` differ.
        bulk_build: eagerly materialize every adjacency row of a shared
            graph in one batched pass (``build_all``) when the backend
            builds it from the obstacle cache, warms clone spares, or
            seeds a shard router's merged environment.  ``False`` keeps
            the pre-bulk behavior: rows materialize one kernel launch per
            settled node.  Rows are byte-identical either way.
        frontier_prefetch: when an array traversal settles a node whose
            row is missing, materialize rows for up to this many frontier
            nodes (nearest first) in one batched pass instead of one
            launch per settle.  ``0`` (or ``1``) disables the wave and
            restores the per-settle launch pattern.  Settle order,
            distances and predecessors are unchanged — materializing a
            row early never alters its content.
        removal_repair: repair resident shared graphs surgically on an
            announced obstacle removal — delete the obstacle's own nodes
            and re-test only the absent pairs whose sight segment's bbox
            overlaps the removed obstacle's padded bbox — instead of
            dropping every graph for a full lazy rebuild.  ``False``
            keeps drop-and-rebuild as the parity oracle.
    """

    engine: str = ARRAY_ENGINE
    bulk_build: bool = True
    frontier_prefetch: int = 16
    removal_repair: bool = True

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(
                f"unknown routing engine {self.engine!r}; "
                f"expected one of {_ENGINES}")
        if self.frontier_prefetch < 0:
            raise ValueError("frontier_prefetch must be >= 0")


DEFAULT_ROUTING = RoutingConfig()
"""The array-native hot path (production default)."""

SCALAR_ROUTING = RoutingConfig(engine=SCALAR_ENGINE)
"""The scalar parity oracle."""
