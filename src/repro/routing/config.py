"""Configuration of the obstructed-distance substrate.

:class:`RoutingConfig` selects which *engine* runs under the (frozen)
graph/traversal API: the array-native hot path or the scalar dict
implementation.  Both produce byte-identical answers — same distances,
same predecessors, same settled order — so the scalar engine survives as
the parity oracle the Hypothesis suite checks the array engine against,
and as the fallback while debugging kernel-level changes.

Like :mod:`repro.routing.stats`, this module sits at the bottom of the
routing dependency stack and imports nothing from the package.
"""

from __future__ import annotations

from dataclasses import dataclass

ARRAY_ENGINE = "array"
"""Flat CSR-style adjacency + batched kernels + array-backed Dijkstra."""

SCALAR_ENGINE = "scalar"
"""Dict-of-dict adjacency + per-chunk kernels + dict-backed Dijkstra."""

_ENGINES = (ARRAY_ENGINE, SCALAR_ENGINE)


@dataclass(frozen=True)
class RoutingConfig:
    """How the distance substrate executes (not *what* it computes).

    Args:
        engine: ``"array"`` (default) for the array-native hot path —
            batched visibility kernels, flat adjacency rows, vectorized
            Dijkstra relaxation — or ``"scalar"`` for the original
            dict-based implementation.  Answers are byte-identical either
            way; only speed and the batch counters in
            :class:`~repro.routing.stats.BackendStats` differ.
    """

    engine: str = ARRAY_ENGINE

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(
                f"unknown routing engine {self.engine!r}; "
                f"expected one of {_ENGINES}")


DEFAULT_ROUTING = RoutingConfig()
"""The array-native hot path (production default)."""

SCALAR_ROUTING = RoutingConfig(engine=SCALAR_ENGINE)
"""The scalar parity oracle."""
