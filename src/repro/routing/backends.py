"""Pluggable obstructed-distance backends.

The CONN/COkNN/ONN/range engines treat the obstructed-distance oracle as a
black box: they need a graph surface to attach query endpoints and data
points to, traverse in Dijkstra order, and feed retrieved obstacles into.
This module makes that surface an explicit protocol
(:class:`ObstructedDistanceBackend`) with two implementations:

* :class:`PerQueryVGBackend` — today's behavior: one fresh
  :class:`~repro.obstacles.visgraph.LocalVisibilityGraph` per query,
  discarded afterwards.  Right for cold one-shot workspaces, and the
  reference semantics every other backend must match.
* :class:`SharedVGBackend` — a workspace-owned *persistent* visibility
  graph.  The obstacle skeleton (vertices plus the lazily materialized,
  expensive-to-test adjacency rows) survives across queries; each query
  attaches its endpoints as transient nodes via the graph's
  ``bind``/``unbind`` and detaches them on completion.  Announced
  workspace updates patch the graph in place (inserts) or repair it
  surgically (removals; drop-and-rebuild survives as the configurable
  parity oracle); a version guard against the backing R*-tree catches
  unannounced mutations at attach time.

Both backends hand the engine a :class:`VGSession`: the engine-facing view
of one query's graph.  A session tracks the obstacles *admitted by this
query* separately from what the underlying (possibly shared) graph holds,
so the paper's NOE and |SVG| metrics — and the cache counters derived from
them — are identical across backends.

Correctness of sharing: a shared graph may contain obstacles beyond the
ones a query's retrieval admitted.  Every such obstacle is real (it came
from the same dataset), so distances computed on the superset are sandwiched
between the per-query value and the true obstructed distance — and the
engine's retrieval fixpoint (Lemma 3) drives both to the same true value.
Results are therefore identical; only intermediate retrieval rounds (an
I/O pattern, not an answer) may differ.
"""

from __future__ import annotations

import math
import threading
import time
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

from .config import DEFAULT_ROUTING, RoutingConfig
from .stats import BackendStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.stats import QueryStats
    from ..geometry.interval import IntervalSet
    from ..geometry.point import Point
    from ..geometry.segment import Segment
    from ..index.rstar import RStarTree
    from ..obstacles.obstacle import Obstacle
    from ..obstacles.visgraph import LocalVisibilityGraph

PER_QUERY_VG = "per-query-vg"
"""Backend name: one throwaway local visibility graph per query."""

SHARED_VG = "shared-vg"
"""Backend name: the workspace-shared incremental visibility graph."""


def _kernel_counters(graph: "LocalVisibilityGraph") -> Tuple[int, ...]:
    """Snapshot of a graph's kernel-work counters.

    Backend maintenance (eager bulk builds, removal repairs) runs while no
    session is attached, so its work would otherwise vanish from
    :class:`BackendStats` — sessions only report deltas over their own
    lifetime.  Maintenance sites snapshot before/after and merge the
    difference via :func:`_kernel_delta`.
    """
    return (graph.visibility_tests, graph.batch_visibility_calls,
            graph.batched_edges_tested, graph.kernel_pruned_edges,
            graph.rows_bulk_materialized, graph.bulk_pair_launches,
            graph.removal_repairs, graph.repair_retested_pairs)


def _kernel_delta(before: Tuple[int, ...],
                  after: Tuple[int, ...]) -> BackendStats:
    """The :class:`BackendStats` increment between two counter snapshots."""
    return BackendStats(
        visibility_tests=after[0] - before[0],
        batch_visibility_calls=after[1] - before[1],
        batched_edges_tested=after[2] - before[2],
        kernel_pruned_edges=after[3] - before[3],
        rows_bulk_materialized=after[4] - before[4],
        bulk_pair_launches=after[5] - before[5],
        removal_repairs=after[6] - before[6],
        repair_retested_pairs=after[7] - before[7],
    )


@runtime_checkable
class ObstructedGraph(Protocol):
    """The graph surface the engines consume (a graph or a session)."""

    qseg: Any
    S: int
    E: int

    def add_point(self, x: float, y: float) -> int: ...  # pragma: no cover
    def remove_point(self, node: int) -> None: ...  # pragma: no cover
    def node_point(self, node: int) -> "Point": ...  # pragma: no cover
    def add_obstacles(self, batch: Iterable["Obstacle"]) -> int: ...  # pragma: no cover
    def dijkstra_order(self, source: int, prune_bound: float = math.inf
                       ) -> Iterator[Tuple[float, int, Optional[int]]]: ...  # pragma: no cover
    def shortest_distances(self, source: int, targets: Iterable[int],
                           cutoff: float = math.inf,
                           prune_bound: float = math.inf
                           ) -> Dict[int, float]: ...  # pragma: no cover
    def visible_region_of(self, node: int) -> "IntervalSet": ...  # pragma: no cover


class VGSession:
    """One query's engine-facing view of a backend's visibility graph.

    Presents exactly the :class:`ObstructedGraph` surface the engines and
    obstacle feeds already consume, while translating between per-query
    semantics and the (possibly shared, longer-lived) underlying graph:

    * obstacle admission is tracked per session, so ``add_obstacles``
      returns the count *new to this query* and ``svg_size`` reports this
      query's |SVG| even when the shared graph already held everything;
    * work counters (visibility tests, Dijkstra runs, settled nodes) are
      reported as deltas over the session's lifetime and flushed into both
      the backend's cumulative :class:`~repro.routing.stats.BackendStats`
      and the query's own stats block on :meth:`detach`.
    """

    def __init__(self, backend: "ObstructedDistanceBackend",
                 graph: "LocalVisibilityGraph", qseg: "Segment",
                 qstats: Optional["QueryStats"], *, shared: bool,
                 built: bool, build_time_s: float = 0.0,
                 spawned: bool = False):
        self._backend = backend
        self.graph = graph
        self.qseg = qseg
        self._qstats = qstats
        self.shared = shared
        self._built = built
        self._spawned = spawned
        self._build_time_s = build_time_s
        self.S = graph.S
        self.E = graph.E
        self._admitted: Set["Obstacle"] = set()
        self._svg_vertices = 0
        self._vt0 = graph.visibility_tests
        self._runs0 = graph.dijkstra_runs
        self._replays0 = graph.dijkstra_replays
        self._settled0 = graph.nodes_settled
        self._batch0 = graph.batch_visibility_calls
        self._edges0 = graph.batched_edges_tested
        self._pruned0 = graph.kernel_pruned_edges
        self._bulk0 = graph.heap_bulk_pushes
        self._array0 = graph.array_traversals
        self._bulkrows0 = graph.rows_bulk_materialized
        self._bulklaunch0 = graph.bulk_pair_launches
        self._repairs0 = graph.removal_repairs
        self._retested0 = graph.repair_retested_pairs
        self._closed = False

    # ------------------------------------------------------- graph surface
    def add_point(self, x: float, y: float) -> int:
        return self.graph.add_point(x, y)

    def remove_point(self, node: int) -> None:
        self.graph.remove_point(node)

    def node_point(self, node: int) -> "Point":
        return self.graph.node_point(node)

    def neighbors(self, node: int) -> Dict[int, float]:
        return self.graph.neighbors(node)

    def dijkstra_order(self, source: int, prune_bound: float = math.inf
                       ) -> Iterator[Tuple[float, int, Optional[int]]]:
        return self.graph.dijkstra_order(source, prune_bound)

    def settled_traversal(self, source: int, prune_bound: float = math.inf):
        return self.graph.settled_traversal(source, prune_bound)

    def shortest_distances(self, source: int, targets: Iterable[int],
                           cutoff: float = math.inf,
                           prune_bound: float = math.inf) -> Dict[int, float]:
        return self.graph.shortest_distances(source, targets, cutoff,
                                             prune_bound)

    def shortest_path(self, source: int, target: int
                      ) -> Tuple[float, List[int]]:
        return self.graph.shortest_path(source, target)

    def visible_region_of(self, node: int) -> "IntervalSet":
        return self.graph.visible_region_of(node)

    def add_obstacles(self, batch: Iterable["Obstacle"]) -> int:
        """Admit obstacles into this query's view (and the graph).

        Returns the number new *to this session* — on a shared graph an
        obstacle may already be resident from an earlier query, but it
        still counts toward this query's NOE exactly as the per-query
        backend would have counted it.
        """
        fresh = [o for o in batch if o not in self._admitted]
        if not fresh:
            return 0
        self._admitted.update(fresh)
        self._svg_vertices += sum(len(o.vertices()) for o in fresh)
        self.graph.add_obstacles(fresh)
        return len(fresh)

    # ----------------------------------------------------------- accounting
    @property
    def svg_size(self) -> int:
        """|SVG| of this query: endpoints plus admitted obstacle vertices."""
        return 2 + self._svg_vertices

    @property
    def visibility_tests(self) -> int:
        """Sight-line tests charged to this session so far."""
        return self.graph.visibility_tests - self._vt0

    # ------------------------------------------------------------ lifecycle
    def detach(self) -> None:
        """End the session: flush counters, release the graph.

        Idempotent; on a shared backend this unbinds the query endpoints so
        the next query can attach.
        """
        if self._closed:
            return
        self._closed = True
        delta = BackendStats(
            sessions=1,
            graphs_built=1 if self._built else 0,
            graph_reuses=0 if self._built else (1 if self.shared else 0),
            graph_spawns=1 if self._spawned else 0,
            build_time_s=self._build_time_s,
            dijkstra_runs=self.graph.dijkstra_runs - self._runs0,
            dijkstra_replays=self.graph.dijkstra_replays - self._replays0,
            nodes_settled=self.graph.nodes_settled - self._settled0,
            visibility_tests=self.graph.visibility_tests - self._vt0,
            batch_visibility_calls=(self.graph.batch_visibility_calls
                                    - self._batch0),
            batched_edges_tested=(self.graph.batched_edges_tested
                                  - self._edges0),
            kernel_pruned_edges=(self.graph.kernel_pruned_edges
                                 - self._pruned0),
            heap_bulk_pushes=self.graph.heap_bulk_pushes - self._bulk0,
            array_traversals=self.graph.array_traversals - self._array0,
            rows_bulk_materialized=(self.graph.rows_bulk_materialized
                                    - self._bulkrows0),
            bulk_pair_launches=(self.graph.bulk_pair_launches
                                - self._bulklaunch0),
            removal_repairs=self.graph.removal_repairs - self._repairs0,
            repair_retested_pairs=(self.graph.repair_retested_pairs
                                   - self._retested0),
        )
        # Counters accumulate per session (this graph is exclusively ours
        # for the session's lifetime, so the deltas are exact) and merge at
        # collection under the backend's stats lock — parallel sessions
        # detaching together must not race the shared integers.
        self._backend._merge_stats(delta)
        if self._qstats is not None:
            self._qstats.backend.merge(delta)
            self._qstats.backend_name = self._backend.name
        self._backend._release(self)

    def __enter__(self) -> "VGSession":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()


@runtime_checkable
class ObstructedDistanceBackend(Protocol):
    """What the planner and executor need from a distance backend."""

    name: str
    stats: BackendStats

    def attach_endpoints(self, qseg: "Segment",
                         stats: Optional["QueryStats"] = None
                         ) -> VGSession: ...  # pragma: no cover

    def shortest_distances(self, session: VGSession, source: int,
                           targets: Iterable[int], cutoff: float = math.inf,
                           prune_bound: float = math.inf
                           ) -> Dict[int, float]: ...  # pragma: no cover

    def dijkstra_order(self, session: VGSession, source: int,
                       prune_bound: float = math.inf
                       ) -> Iterator[Tuple[float, int, Optional[int]]]: ...  # pragma: no cover

    def note_obstacle_insert(self, obstacle: "Obstacle") -> None: ...  # pragma: no cover

    def note_obstacle_remove(self, obstacle: "Obstacle") -> None: ...  # pragma: no cover


class _BackendBase:
    """Shared protocol plumbing: session delegation and no-op maintenance."""

    name = "backend"

    def __init__(self) -> None:
        self.stats = BackendStats()
        self._stats_lock = threading.Lock()

    def _merge_stats(self, delta: BackendStats) -> None:
        """Fold one session's counter deltas into the cumulative block."""
        with self._stats_lock:
            self.stats.merge(delta)

    def shortest_distances(self, session: VGSession, source: int,
                           targets: Iterable[int],
                           cutoff: float = math.inf,
                           prune_bound: float = math.inf) -> Dict[int, float]:
        """Early-terminating Dijkstra distances on a session's graph."""
        return session.shortest_distances(source, targets, cutoff,
                                          prune_bound)

    def dijkstra_order(self, session: VGSession, source: int,
                       prune_bound: float = math.inf
                       ) -> Iterator[Tuple[float, int, Optional[int]]]:
        """The ascending settled order a session's graph yields."""
        return session.dijkstra_order(source, prune_bound)

    def note_obstacle_insert(self, obstacle: "Obstacle") -> None:
        """Announced obstacle insert; stateless backends ignore it."""

    def note_obstacle_remove(self, obstacle: "Obstacle") -> None:
        """Announced obstacle removal; stateless backends ignore it."""

    def _release(self, session: VGSession) -> None:
        """Session teardown hook (the per-query graph just gets dropped)."""


class PerQueryVGBackend(_BackendBase):
    """One throwaway local visibility graph per query (the paper's mode).

    Stateless across queries: every :meth:`attach_endpoints` builds a fresh
    anchored graph, so a cold one-shot pays exactly the seed algorithm's
    cost and nothing lingers afterwards.

    Args:
        routing: which substrate engine the per-query graphs run on
            (array-native by default; scalar for the parity oracle).
    """

    name = PER_QUERY_VG

    def __init__(self, routing: RoutingConfig = DEFAULT_ROUTING) -> None:
        super().__init__()
        self.routing = routing

    def attach_endpoints(self, qseg: "Segment",
                         stats: Optional["QueryStats"] = None) -> VGSession:
        """Open a session on a fresh graph anchored at ``qseg``."""
        from ..obstacles.visgraph import LocalVisibilityGraph

        t0 = time.perf_counter()
        graph = LocalVisibilityGraph(qseg, engine=self.routing.engine,
                                     prefetch=self.routing.frontier_prefetch,
                                     bulk_build=self.routing.bulk_build)
        return VGSession(self, graph, qseg, stats, shared=False, built=True,
                         build_time_s=time.perf_counter() - t0)


class SharedVGBackend(_BackendBase):
    """A workspace-owned persistent visibility graph shared across queries.

    Args:
        obstacle_tree: the R*-tree whose ``version`` counter guards the
            graph against unannounced mutations (the obstacle tree on 2T,
            the unified tree on 1T).
        cache: the workspace's obstacle cache; graphs are seeded lazily
            from its resident obstacles (the capsules' contents) and grow
            further as queries retrieve past the cached footprint.
        max_pool: idle graphs kept for concurrent sessions beyond the
            primary (spares above the bound are dropped on release).
        routing: which substrate engine resident graphs run on
            (array-native by default; scalar for the parity oracle).

    The *primary* graph is built on first attach and reused by every later
    serial session — exactly the pre-concurrency behavior, same stats.
    Under concurrency the backend holds a small **pool**: a session that
    attaches while every resident graph is busy gets its own graph —
    either a pre-provisioned clone of the primary skeleton
    (:meth:`prepare_sessions`, cached adjacency rows included) or a fresh
    build from the obstacle cache — and returns it to the pool on detach.
    Each graph serves exactly one session at a time, so no query ever
    traverses a graph another thread is mutating; per-session counter
    deltas stay exact.

    Maintenance runs with the workspace write lock held (no session in
    flight): ``note_obstacle_insert`` patches every resident graph in
    place (adjacency rows self-repair lazily, exactly as IOR insertion
    always has); ``note_obstacle_remove`` repairs every resident graph
    surgically — removal only *adds* visibility, so only the absent pairs
    the removed obstacle's padded bbox could have been blocking are
    re-tested, in one batched launch per graph — unless
    ``routing.removal_repair`` is off, in which case all graphs drop for
    a lazy rebuild from the (already-evicted) cache.  A tree version
    mismatch at attach time means someone mutated the index behind the
    workspace's back: every graph is dropped, never served stale.  Each
    drop bumps :attr:`generation`, the freshness token workspace
    snapshots pin; repairs leave it untouched (nothing was dropped).
    """

    name = SHARED_VG

    def __init__(self, obstacle_tree: "RStarTree", cache: Any = None,
                 max_pool: int = 8,
                 routing: RoutingConfig = DEFAULT_ROUTING):
        super().__init__()
        self.tree = obstacle_tree
        self.cache = cache
        self.max_pool = max_pool
        self.routing = routing
        self._graph: Optional["LocalVisibilityGraph"] = None
        self._primary_busy = False
        self._idle: List["LocalVisibilityGraph"] = []
        self._tree_version = obstacle_tree.version
        self.generation = 0
        """Bumped whenever resident graphs are dropped (invalidation,
        announced removal).  Workspace snapshots pin it; pooled spares
        stamped with an older generation are discarded instead of served."""
        self._stamps: Dict[int, int] = {}
        self._lock = threading.RLock()

    # ---------------------------------------------------------- maintenance
    @property
    def ready(self) -> bool:
        """True when the primary graph is built (the planner's warm signal)."""
        return self._graph is not None

    @property
    def resident_obstacles(self) -> int:
        """Obstacles resident in the primary graph (0 when down)."""
        return len(self._graph.obstacles) if self._graph is not None else 0

    @property
    def pooled_graphs(self) -> int:
        """Idle spare graphs currently pooled for concurrent sessions."""
        return len(self._idle)

    def _drop(self) -> None:
        self._graph = None
        self._primary_busy = False
        self._idle.clear()
        self._stamps.clear()
        self.generation += 1

    def invalidate(self) -> None:
        """Drop every resident graph (rebuilds lazily on next attach)."""
        with self._lock:
            if self._graph is not None or self._idle:
                with self._stats_lock:
                    self.stats.invalidations += 1
            self._drop()

    def sync_tree_version(self) -> None:
        """Adopt the tree's version for mutations that cannot affect the
        graph (data-point updates on a 1T unified tree)."""
        with self._lock:
            self._tree_version = self.tree.version

    def _absorb_announced_mutation(self) -> bool:
        """Version bookkeeping shared by the two ``note_obstacle_*`` hooks.

        Mirrors the obstacle cache's guard: surgical repair is only sound
        when the announced mutation is the *only* thing that happened to
        the tree since the last sync.
        """
        if self.tree.version != self._tree_version + 1:
            self.invalidate()
            self._tree_version = self.tree.version
            return False
        self._tree_version = self.tree.version
        return True

    def note_obstacle_insert(self, obstacle: "Obstacle") -> None:
        """Patch an announced insert into every resident graph.

        Vertices register immediately; cached adjacency rows repair
        themselves lazily on next access (the same incremental mechanism
        IOR insertion uses), so the patch is O(vertices) per graph.  Called
        under the workspace write lock, so no graph is mid-traversal.
        """
        with self._lock:
            if not self._absorb_announced_mutation():
                return
            patched = False
            for graph in self._resident_graphs():
                graph.add_obstacles([obstacle])
                patched = True
            if patched:
                with self._stats_lock:
                    self.stats.patched += 1

    def note_obstacle_remove(self, obstacle: "Obstacle") -> None:
        """Absorb an announced removal into every resident graph.

        With ``routing.removal_repair`` (the default) each resident graph
        repairs itself surgically — the obstacle's own vertices are
        deleted and only the absent sight-line pairs its padded bbox could
        have been blocking are re-tested, in one batched launch per graph
        (see :meth:`~repro.obstacles.visgraph.LocalVisibilityGraph.remove_obstacle`).
        Cached rows, traversal memos for unaffected sources, and pooled
        spares all survive; :attr:`generation` does **not** bump, because
        no graph was dropped.  Called under the workspace write lock, so
        no graph is mid-traversal.

        With the switch off, the pre-repair behavior: drop every graph
        (``evicted``) for a lazy rebuild from the obstacle cache.
        """
        with self._lock:
            if not self._absorb_announced_mutation():
                return
            if self._graph is None and not self._idle:
                return
            if not self.routing.removal_repair:
                with self._stats_lock:
                    self.stats.evicted += 1
                self._drop()
                return
            for graph in self._resident_graphs():
                before = _kernel_counters(graph)
                graph.remove_obstacle(obstacle)
                self._merge_stats(_kernel_delta(before,
                                                _kernel_counters(graph)))

    def _resident_graphs(self) -> Iterator["LocalVisibilityGraph"]:
        if self._graph is not None:
            yield self._graph
        yield from self._idle

    def warm(self, obstacles: Optional[Iterable["Obstacle"]] = None) -> int:
        """Build the primary graph now, optionally over extra obstacles.

        The eager-warmup entry point: cold shared workspaces and the shard
        router's freshly merged environments call it so the first query
        lands on a fully materialized skeleton instead of paying
        per-settle kernel launches.  Warming always materializes every
        row — ``routing.bulk_build`` only selects *how*: one batched pass
        over all missing rows, or the per-node one-launch-per-row walk
        (the baseline arm of the cold bench).  ``obstacles`` beyond the
        cache's resident set are admitted first, so a merged environment
        can warm exactly the union its shards contributed.  Also flips
        :attr:`ready`, which the planner reads as the auto-mode warm
        signal.

        Returns:
            Number of obstacles resident in the primary graph afterwards.
        """
        with self._lock:
            if self.tree.version != self._tree_version:
                self.invalidate()
                self._tree_version = self.tree.version
            if self._graph is None:
                self._graph, build_time = self._build_graph(extra=obstacles)
                with self._stats_lock:
                    self.stats.graphs_built += 1
                    self.stats.build_time_s += build_time
                obstacles = None  # admitted by the build above
                if self.routing.bulk_build:
                    # _build_graph already materialized every row.
                    return len(self._graph.obstacles)
            graph = self._graph
            t0 = time.perf_counter()
            before = _kernel_counters(graph)
            if obstacles is not None:
                graph.add_obstacles(obstacles)
            graph.build_all()
            self._merge_stats(_kernel_delta(before,
                                            _kernel_counters(graph)))
            with self._stats_lock:
                self.stats.build_time_s += time.perf_counter() - t0
            return len(self._graph.obstacles)

    # ------------------------------------------------------------- sessions
    def _build_graph(self, extra: Optional[Iterable["Obstacle"]] = None
                     ) -> Tuple["LocalVisibilityGraph", float]:
        """A fresh graph seeded from the obstacle cache, with build time.

        With ``routing.bulk_build`` every adjacency row of the seeded
        skeleton is cut eagerly in one batched pass (``build_all``) — the
        cold-start cost moves from one kernel launch per settled node to a
        handful per build.  The build's kernel work is merged straight
        into the backend stats: the session that triggered the build
        snapshots its counter baselines *after* construction, so nothing
        is double-counted.
        """
        from ..obstacles.visgraph import LocalVisibilityGraph

        t0 = time.perf_counter()
        if self.cache is not None:
            seed = (self.cache.resident() if hasattr(self.cache, "resident")
                    else list(self.cache.obstacles))
        else:
            seed = []
        graph = LocalVisibilityGraph(obstacles=seed,
                                     engine=self.routing.engine,
                                     prefetch=self.routing.frontier_prefetch,
                                     bulk_build=self.routing.bulk_build)
        if extra is not None:
            graph.add_obstacles(extra)
        if self.routing.bulk_build and len(graph.obstacles):
            graph.build_all()
            # Fresh graph: its counters *are* the build work.
            self._merge_stats(_kernel_delta((0,) * 8,
                                            _kernel_counters(graph)))
        return graph, time.perf_counter() - t0

    def prepare_sessions(self, n: int) -> int:
        """Pre-provision graphs so ``n`` sessions can attach concurrently.

        Clones the primary skeleton — cached adjacency rows included, the
        asset a cold spawn from the obstacle cache would lose — until the
        primary plus idle spares cover ``n`` concurrent sessions (bounded
        by ``max_pool``).  A no-op while the backend is cold: spawning
        graphs nobody may use would charge builds to workloads that never
        go parallel.

        Returns:
            Number of clones created.
        """
        with self._lock:
            if self._graph is None or self._primary_busy:
                return 0
            want = min(n - 1, self.max_pool) - len(self._idle)
            if want > 0 and self.routing.bulk_build:
                # Warm the primary's full row set once, in bulk, so every
                # clone carries a complete adjacency cache instead of each
                # worker paying the per-settle launches separately.
                before = _kernel_counters(self._graph)
                self._graph.build_all()
                self._merge_stats(_kernel_delta(
                    before, _kernel_counters(self._graph)))
            made = 0
            for _ in range(max(0, want)):
                clone = self._graph.clone_skeleton()
                self._stamps[id(clone)] = self.generation
                self._idle.append(clone)
                made += 1
            if made:
                with self._stats_lock:
                    self.stats.graph_clones += made
            return made

    def attach_endpoints(self, qseg: "Segment",
                         stats: Optional["QueryStats"] = None) -> VGSession:
        """Bind a query's endpoints to a resident graph.

        The primary graph serves when idle (the serial fast path).  While
        it is busy — a concurrent query, or a nested sub-query inside one
        session — the session gets a pooled spare, or a freshly spawned
        graph seeded from the obstacle cache when no spare is idle.  Every
        graph hosts one session at a time; results are identical on any of
        them (the superset-soundness argument in the module docstring).
        """
        with self._lock:
            if self.tree.version != self._tree_version:
                self.invalidate()
                self._tree_version = self.tree.version
            built = spawned = False
            build_time = 0.0
            if self._graph is None:
                self._graph, build_time = self._build_graph()
                built = True
                graph = self._graph
                self._primary_busy = True
            elif not self._primary_busy:
                graph = self._graph
                self._primary_busy = True
            else:
                while self._idle:
                    candidate = self._idle.pop()
                    if self._stamps.get(id(candidate)) == self.generation:
                        graph = candidate
                        break
                    self._stamps.pop(id(candidate), None)
                else:
                    graph, build_time = self._build_graph()
                    self._stamps[id(graph)] = self.generation
                    built = spawned = True
            graph.bind(qseg)
        return VGSession(self, graph, qseg, stats, shared=True,
                         built=built, build_time_s=build_time,
                         spawned=spawned)

    def _release(self, session: VGSession) -> None:
        graph = session.graph
        with self._lock:
            if graph.qseg is not None:
                graph.unbind()
            # Every query leaves its transient endpoints and evaluated data
            # points behind as dead append-only slots; compact once they
            # outnumber the live skeleton so a long-lived workspace stays
            # O(obstacle vertices), not O(queries ever served).  Cached
            # adjacency rows — the amortized asset — survive compaction.
            if graph.dead_slots > max(64, graph.num_nodes):
                graph.compact()
                with self._stats_lock:
                    self.stats.compactions += 1
            if graph is self._graph:
                self._primary_busy = False
                return
            if (self._stamps.get(id(graph)) == self.generation
                    and len(self._idle) < self.max_pool):
                self._idle.append(graph)
            else:
                self._stamps.pop(id(graph), None)
