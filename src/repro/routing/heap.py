"""A bulk-push priority queue with ``heapq``-identical pop order.

:class:`~repro.routing.dijkstra.ArrayTraversal` relaxes a whole adjacency
row per settle, but historically fed the results into a binary heap one
``heappush`` at a time — a pure-Python loop that profiled at ~13% of the
warm-corridor wall.  :class:`BulkRowHeap` replaces it with the *sequence
heap* idea (Sanders 2000): each relaxed row is sorted **once** in C
(``np.lexsort``) and stored as a run consumed from the front, and a tiny
C-``heapq`` of run heads yields the global minimum.  A bulk push is then
one lexsort plus one ``heappush`` instead of ``len(row)`` of them.

Pop order is *identical* to ``heapq`` over individual ``(dist, node)``
tuples: both structures always surface the lexicographic minimum of the
currently stored multiset of pairs, and pairs that compare equal are
interchangeable (Dijkstra skips the duplicate once the node is settled).
That is the property the array engine's bit-parity promise rests on, and
``tests/test_bulk_heap.py`` drives it with adversarial distance ties.

A run only pays for itself when the row is long enough for one C sort to
beat ``m`` binary-heap sifts: rows shorter than ``_MIN_RUN`` are pushed
as individual singleton entries (rid ``-1``, no run storage) — exactly
the classic per-edge path, minus the numpy round trip.  Runs are
compacted (concatenated and re-sorted) once more than ``max_runs``
accumulate, so the head heap stays small even on traversals that settle
thousands of nodes.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["BulkRowHeap"]

_MIN_RUN = 16
"""Row length below which per-element pushes beat a lexsort run.

Warm-corridor rows average ~5 improved neighbors; profiling puts the
crossover between ``m`` heappushes and one ``np.lexsort`` + list
conversion + run bookkeeping in the low tens.  Either path yields the
same pop order, so the constant is purely a performance knob."""


class BulkRowHeap:
    """Min-heap of ``(dist, node)`` pairs with O(sort) whole-row pushes."""

    __slots__ = ("_heads", "_runs", "_next", "_len", "_max_runs",
                 "bulk_pushes")

    def __init__(self, max_runs: int = 48):
        # One entry per live run: (head dist, head node, run id).  The run
        # id breaks head ties deterministically and is never surfaced.
        self._heads: List[Tuple[float, int, int]] = []
        # run id -> [dists, nodes, cursor]; dists/nodes are plain lists so
        # the per-pop advance costs two C-level indexing ops, no numpy.
        self._runs: Dict[int, list] = {}
        self._next = 0
        self._len = 0
        self._max_runs = max_runs
        self.bulk_pushes = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def push(self, dist: float, node: int) -> None:
        """Push a single pair (used for traversal sources)."""
        heappush(self._heads, (dist, node, -1))
        self._len += 1

    def push_row(self, dists: np.ndarray, nodes: np.ndarray) -> None:
        """Push a whole relaxed row of ``(dists[i], nodes[i])`` pairs."""
        m = dists.shape[0]
        if m == 0:
            return
        if m < _MIN_RUN:
            heads = self._heads
            for d, n in zip(dists.tolist(), nodes.tolist()):
                heappush(heads, (d, n, -1))
            self._len += m
            return
        order = np.lexsort((nodes, dists))
        dl = dists[order].tolist()
        nl = nodes[order].tolist()
        rid = self._next
        self._next = rid + 1
        self._runs[rid] = [dl, nl, 0]
        heappush(self._heads, (dl[0], nl[0], rid))
        self._len += m
        self.bulk_pushes += 1
        if len(self._runs) > self._max_runs:
            self._compact()

    def peek(self) -> Tuple[float, int]:
        """The smallest stored ``(dist, node)`` pair, without removing it."""
        head = self._heads[0]
        return (head[0], head[1])

    def pop(self) -> Tuple[float, int]:
        """Pop the lexicographically smallest ``(dist, node)`` pair."""
        dist, node, rid = heappop(self._heads)
        if rid >= 0:
            run = self._runs[rid]
            cursor = run[2] + 1
            dl = run[0]
            if cursor < len(dl):
                run[2] = cursor
                heappush(self._heads, (dl[cursor], run[1][cursor], rid))
            else:
                del self._runs[rid]
        self._len -= 1
        return dist, node

    def _compact(self) -> None:
        """Merge every live run into one freshly sorted run.

        Singleton entries (rid ``-1``) live only in the head heap and stay
        there; each run's un-consumed tail — which includes its current
        head entry — moves into the merged run.
        """
        dl: List[float] = []
        nl: List[int] = []
        for dists, nodes, cursor in self._runs.values():
            dl.extend(dists[cursor:])
            nl.extend(nodes[cursor:])
        heads = [h for h in self._heads if h[2] == -1]
        da = np.asarray(dl, dtype=np.float64)
        na = np.asarray(nl, dtype=np.int64)
        order = np.lexsort((na, da))
        dl = da[order].tolist()
        nl = na[order].tolist()
        self._runs = {0: [dl, nl, 0]}
        self._next = 1
        if dl:
            heads.append((dl[0], nl[0], 0))
        heapify(heads)
        self._heads = heads
