"""Numpy-vectorized visibility predicates.

The visibility graph needs, per query, on the order of ``|VG|^2`` sight-line
tests, each against every retrieved obstacle.  Pure-Python predicates would
dominate the runtime, so the hot paths batch over numpy arrays.  Semantics
are identical to the scalar predicates in :mod:`repro.geometry.predicates`
(the test suite cross-checks them on random inputs):

* rectangle obstacles block only when the sight line crosses their *open*
  interior;
* segment obstacles block only on a *proper* crossing;
* all inputs broadcast, so the same kernels serve "1 segment x N obstacles",
  "E edges x 1 obstacle" and the per-row grids used by shadow computation.
"""

from __future__ import annotations

import numpy as np

from .predicates import EPS

__all__ = [
    "crosses_rect_interior",
    "crosses_convex_polygon",
    "proper_cross_segments",
    "blocked_by_rects",
    "blocked_by_segments",
    "blocked_batch",
    "primitive_bounds",
    "visibility_mask",
    "pairwise_visibility",
]

BATCH_TILE_ELEMS = 65_536
"""Edge-x-obstacle elements evaluated per tile of :func:`blocked_batch`.

Sized to keep a tile's broadcast intermediates (~16 temporaries per
element) inside the L2 cache: measured on the bulk-build workload, 64k
tiles run the same pair set ~2.5x faster than the former 4M cap, which
only bounded peak memory and let every temporary stream through DRAM.
Tiling never changes results — the kernels are elementwise."""

_TINY = 1e-300
"""Division guard: replacing a zero direction component by this keeps the
slab-test signs correct while avoiding NaNs entirely."""


def crosses_rect_interior(ax, ay, bx, by, xlo, ylo, xhi, yhi, eps: float = EPS):
    """Broadcasted test: does segment ``[a, b]`` cross the open rectangle interior?

    All eight arguments broadcast against each other; the result has the
    broadcast shape.  Degenerate rectangles never block; running along an
    edge or touching a corner never blocks.
    """
    with np.errstate(all="ignore"):
        dx = np.subtract(bx, ax)
        dy = np.subtract(by, ay)
        dxs = np.where(dx == 0.0, _TINY, dx)
        dys = np.where(dy == 0.0, _TINY, dy)
        tx1 = (xlo - ax) / dxs
        tx2 = (xhi - ax) / dxs
        ty1 = (ylo - ay) / dys
        ty2 = (yhi - ay) / dys
        t0 = np.maximum(np.maximum(np.minimum(tx1, tx2), np.minimum(ty1, ty2)),
                        0.0)
        t1 = np.minimum(np.minimum(np.maximum(tx1, tx2), np.maximum(ty1, ty2)),
                        1.0)
        width = xhi - xlo
        height = yhi - ylo
        overlap = (t1 - t0) > eps
        tm = 0.5 * (t0 + t1)
        mx = ax + tm * dx
        my = ay + tm * dy
        ex = np.minimum(eps, width * 1e-7)
        ey = np.minimum(eps, height * 1e-7)
        inside = ((mx > xlo + ex) & (mx < xhi - ex) &
                  (my > ylo + ey) & (my < yhi - ey))
        nondegenerate = (width > eps) & (height > eps)
        return overlap & inside & nondegenerate


def crosses_convex_polygon(ax: float, ay: float, bx, by, poly: np.ndarray,
                           eps: float = EPS) -> np.ndarray:
    """Do segments from ``(ax, ay)`` to each ``(bx, by)`` cross a convex polygon?

    ``poly`` is a (V, 2) array of counter-clockwise vertices.  Semantics match
    the rectangle kernel: only passing through the *open interior* blocks;
    grazing along an edge or through a vertex does not.  The source point is
    scalar, targets broadcast — the shape every caller needs (visibility rows,
    shadow midpoint grids).
    """
    bx = np.asarray(bx, dtype=np.float64)
    by = np.asarray(by, dtype=np.float64)
    n = poly.shape[0]
    with np.errstate(all="ignore"):
        dxs = bx - ax
        dys = by - ay
        t0 = np.zeros(bx.shape)
        t1 = np.ones(bx.shape)
        feasible = np.ones(bx.shape, dtype=bool)
        for i in range(n):
            px, py = poly[i]
            qx, qy = poly[(i + 1) % n]
            ex = qx - px
            ey = qy - py
            c = ex * (ay - py) - ey * (ax - px)   # cross(edge, a - p)
            d = ex * dys - ey * dxs               # cross(edge, b - a)
            r = np.where(d != 0.0, -c / np.where(d == 0.0, 1.0, d), 0.0)
            t0 = np.where(d > 0.0, np.maximum(t0, r), t0)
            t1 = np.where(d < 0.0, np.minimum(t1, r), t1)
            feasible &= ~((d == 0.0) & (c < 0.0))
        overlap = feasible & ((t1 - t0) > eps)
        tm = 0.5 * (t0 + t1)
        mx = ax + tm * dxs
        my = ay + tm * dys
        inside = overlap.copy()
        for i in range(n):
            px, py = poly[i]
            qx, qy = poly[(i + 1) % n]
            ex = qx - px
            ey = qy - py
            scale = max(abs(ex) + abs(ey), 1.0)
            f = ex * (my - py) - ey * (mx - px)
            inside &= f > eps * scale
        return inside


def _orient_sign(ax, ay, bx, by, cx, cy, eps: float = EPS):
    """Vectorized tolerant orientation sign (-1, 0, +1)."""
    bax = np.subtract(bx, ax)
    bay = np.subtract(by, ay)
    cax = np.subtract(cx, ax)
    cay = np.subtract(cy, ay)
    v = bax * cay - bay * cax
    scale = (np.maximum(np.abs(bax) + np.abs(bay), 1.0) *
             np.maximum(np.abs(cax) + np.abs(cay), 1.0))
    tol = eps * scale
    return (v > tol).astype(np.int8) - (v < -tol).astype(np.int8)


def proper_cross_segments(ax, ay, bx, by, cx, cy, dx, dy, eps: float = EPS):
    """Broadcasted proper-crossing test of open segments ``(a,b)`` and ``(c,d)``."""
    s1 = _orient_sign(ax, ay, bx, by, cx, cy, eps)
    s2 = _orient_sign(ax, ay, bx, by, dx, dy, eps)
    s3 = _orient_sign(cx, cy, dx, dy, ax, ay, eps)
    s4 = _orient_sign(cx, cy, dx, dy, bx, by, eps)
    return (s1 * s2 < 0) & (s3 * s4 < 0)


def blocked_by_rects(ax, ay, bx, by, rects: np.ndarray, eps: float = EPS) -> np.ndarray:
    """Mask of which rectangles in ``rects`` (N, 4) block segment ``[a, b]``."""
    if rects.size == 0:
        return np.zeros(0, dtype=bool)
    return crosses_rect_interior(ax, ay, bx, by,
                                 rects[:, 0], rects[:, 1], rects[:, 2], rects[:, 3],
                                 eps)


def blocked_by_segments(ax, ay, bx, by, segs: np.ndarray, eps: float = EPS) -> np.ndarray:
    """Mask of which segment obstacles in ``segs`` (M, 4) block segment ``[a, b]``."""
    if segs.size == 0:
        return np.zeros(0, dtype=bool)
    return proper_cross_segments(ax, ay, bx, by,
                                 segs[:, 0], segs[:, 1], segs[:, 2], segs[:, 3],
                                 eps)


def primitive_bounds(rects: np.ndarray, segs: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray]":
    """Per-primitive AABBs for :func:`blocked_batch`'s bbox prefilter.

    Returns ``(rect_bounds, seg_bounds)``, each of shape (N, 4) as
    ``[xlo, ylo, xhi, yhi]`` rows.  Rectangle obstacles already *are*
    their bounds (``RectObstacle`` validates ``lo <= hi``), so that slab
    is returned without copying; segment bounds order each coordinate
    pair.
    """
    if segs.size:
        sb = np.empty((segs.shape[0], 4), dtype=np.float64)
        np.minimum(segs[:, 0], segs[:, 2], out=sb[:, 0])
        np.minimum(segs[:, 1], segs[:, 3], out=sb[:, 1])
        np.maximum(segs[:, 0], segs[:, 2], out=sb[:, 2])
        np.maximum(segs[:, 1], segs[:, 3], out=sb[:, 3])
    else:
        sb = np.empty((0, 4), dtype=np.float64)
    return rects, sb


def _kind_hits(hit: np.ndarray, kernel, sx, sy, tx, ty, prims: np.ndarray,
               pb, pad: float, eps: float,
               ebounds) -> "tuple[int, int]":
    """Test one obstacle kind for one tile, optionally bbox-prefiltered.

    Updates ``hit`` in place; returns ``(pairs_tested, pairs_pruned)``.
    The prefilter only skips (edge, primitive) pairs whose padded AABBs
    are disjoint — pairs the tolerant kernels below could never have
    decided "blocking" (the pad dominates their eps tolerance and the
    midpoint-lerp rounding) — so the resulting mask is identical to the
    full broadcast.
    """
    full = hit.shape[0] * prims.shape[0]
    if pb is not None:
        exlo, eylo, exhi, eyhi = ebounds
        overlap = ((exlo[:, None] <= pb[None, :, 2] + pad) &
                   (exhi[:, None] >= pb[None, :, 0] - pad) &
                   (eylo[:, None] <= pb[None, :, 3] + pad) &
                   (eyhi[:, None] >= pb[None, :, 1] - pad))
        ei, oi = overlap.nonzero()
        # Gathering pairs costs ~2x the broadcast per element, so a dense
        # overlap (most boxes touch most edges) runs the plain broadcast.
        if ei.size * 2 < full:
            if ei.size:
                pair_hit = kernel(sx[ei], sy[ei], tx[ei], ty[ei],
                                  prims[oi, 0], prims[oi, 1],
                                  prims[oi, 2], prims[oi, 3], eps)
                hit[ei[pair_hit]] = True
            return ei.size, full - ei.size
    hit |= kernel(sx[:, None], sy[:, None], tx[:, None], ty[:, None],
                  prims[None, :, 0], prims[None, :, 1],
                  prims[None, :, 2], prims[None, :, 3], eps).any(axis=1)
    return full, 0


def blocked_batch(sources: np.ndarray, targets: np.ndarray,
                  rects: np.ndarray, segs: np.ndarray, polys=(),
                  eps: float = EPS,
                  tile_elems: int = BATCH_TILE_ELEMS,
                  bounds: "tuple[np.ndarray, np.ndarray] | None" = None,
                  tally: "dict | None" = None) -> np.ndarray:
    """Which of M candidate edges are blocked by *any* cached obstacle?

    The batch kernel behind the array-native visibility graph: row ``i`` of
    ``sources`` / ``targets`` (both (M, 2)) is one candidate sight line, and
    the whole M-edge block is tested against all N obstacle primitives in
    one ``M x N`` broadcast per obstacle kind — one numpy call where the
    scalar path made one call per edge.  Above ``tile_elems`` the broadcast
    is tiled over source rows so intermediates stay bounded.

    Semantics are exactly the elementwise kernels above (the per-edge
    results are independent of how edges are batched, tiled, or bbox-
    prefiltered), so a batch decision is bit-identical to the scalar
    predicates on the same edge.

    Args:
        polys: optional sequence of (V, 2) counter-clockwise vertex arrays
            for convex polygon obstacles.
        bounds: optional :func:`primitive_bounds` result for ``rects`` /
            ``segs``.  When given, each edge is only evaluated against
            primitives whose padded AABB overlaps the edge's AABB; a pair
            whose boxes are disjoint cannot block (see :func:`_kind_hits`),
            so results are unchanged — only cheaper.
        tally: optional dict the call fills with ``tested`` (pairs actually
            evaluated by a kernel) and ``pruned`` (pairs skipped by the
            prefilter) for the owner's counters.

    Returns:
        Boolean mask of shape (M,): True where the edge is blocked.
    """
    m = sources.shape[0]
    blocked = np.zeros(m, dtype=bool)
    tested = pruned = 0
    if m == 0:
        if tally is not None:
            tally["tested"] = tally["pruned"] = 0
        return blocked
    n_rects = rects.shape[0] if rects.size else 0
    n_segs = segs.shape[0] if segs.size else 0
    rb = sb = None
    pad = 0.0
    if bounds is not None and (n_rects or n_segs):
        rb, sb = bounds
        if not n_rects or not rb.size:
            rb = None
        if not n_segs or not sb.size:
            sb = None
        # The pad scales eps by the coordinate magnitude so it dominates
        # both the kernels' tolerant comparisons and the rounding of the
        # clipped-midpoint lerp — no truly blocking pair can be pruned.
        scale = 1.0 + max(float(np.abs(sources).max()),
                          float(np.abs(targets).max()))
        pad = 8.0 * eps * scale
    n_prims = n_rects + n_segs
    rows_per_tile = m if n_prims == 0 else max(1, tile_elems // n_prims)
    for start in range(0, m, rows_per_tile):
        stop = min(start + rows_per_tile, m)
        sx = sources[start:stop, 0]
        sy = sources[start:stop, 1]
        tx = targets[start:stop, 0]
        ty = targets[start:stop, 1]
        hit = np.zeros(stop - start, dtype=bool)
        ebounds = None
        if rb is not None or sb is not None:
            ebounds = (np.minimum(sx, tx), np.minimum(sy, ty),
                       np.maximum(sx, tx), np.maximum(sy, ty))
        if n_rects:
            t, p = _kind_hits(hit, crosses_rect_interior, sx, sy, tx, ty,
                              rects, rb, pad, eps, ebounds)
            tested += t
            pruned += p
        if n_segs:
            t, p = _kind_hits(hit, proper_cross_segments, sx, sy, tx, ty,
                              segs, sb, pad, eps, ebounds)
            tested += t
            pruned += p
        blocked[start:stop] = hit
    pb_edges = None
    if polys and bounds is not None:
        if pad == 0.0:
            scale = 1.0 + max(float(np.abs(sources).max()),
                              float(np.abs(targets).max()))
            pad = 8.0 * eps * scale
        pb_edges = (np.minimum(sources[:, 0], targets[:, 0]),
                    np.minimum(sources[:, 1], targets[:, 1]),
                    np.maximum(sources[:, 0], targets[:, 0]),
                    np.maximum(sources[:, 1], targets[:, 1]))
    for poly in polys:
        arr = poly.as_array() if hasattr(poly, "as_array") else np.asarray(poly)
        if pb_edges is not None:
            # Same padded-AABB prune as _kind_hits, per polygon: an edge
            # whose box misses the hull's box cannot cross it, so skipping
            # the kernel (or the whole polygon, the usual case for a
            # localized launch) leaves the mask unchanged.
            exlo, eylo, exhi, eyhi = pb_edges
            sel = ((exlo <= float(arr[:, 0].max()) + pad) &
                   (exhi >= float(arr[:, 0].min()) - pad) &
                   (eylo <= float(arr[:, 1].max()) + pad) &
                   (eyhi >= float(arr[:, 1].min()) - pad)).nonzero()[0]
            if sel.size * 2 < m:
                tested += sel.size
                pruned += m - sel.size
                if sel.size:
                    ph = crosses_convex_polygon(
                        sources[sel, 0], sources[sel, 1],
                        targets[sel, 0], targets[sel, 1], arr, eps)
                    blocked[sel[ph]] = True
                continue
        blocked |= crosses_convex_polygon(sources[:, 0], sources[:, 1],
                                          targets[:, 0], targets[:, 1],
                                          arr, eps)
        tested += m
    if tally is not None:
        tally["tested"] = tested
        tally["pruned"] = pruned
    return blocked


def visibility_mask(vx: float, vy: float, targets: np.ndarray,
                    rects: np.ndarray, segs: np.ndarray,
                    polys=(), eps: float = EPS) -> np.ndarray:
    """For each row of ``targets`` (K, 2): is the sight line from ``v`` unblocked?

    ``polys`` is an optional sequence of (V, 2) counter-clockwise vertex
    arrays for convex polygon obstacles.
    """
    k = targets.shape[0]
    visible = np.ones(k, dtype=bool)
    if k == 0:
        return visible
    tx = targets[:, 0]
    ty = targets[:, 1]
    if rects.size:
        blocked = crosses_rect_interior(
            vx, vy, tx[:, None], ty[:, None],
            rects[None, :, 0], rects[None, :, 1], rects[None, :, 2], rects[None, :, 3],
            eps,
        ).any(axis=1)
        visible &= ~blocked
    if segs.size:
        blocked = proper_cross_segments(
            vx, vy, tx[:, None], ty[:, None],
            segs[None, :, 0], segs[None, :, 1], segs[None, :, 2], segs[None, :, 3],
            eps,
        ).any(axis=1)
        visible &= ~blocked
    for poly in polys:
        visible &= ~crosses_convex_polygon(vx, vy, tx, ty, poly, eps)
    return visible


def pairwise_visibility(sources: np.ndarray, targets: np.ndarray,
                        rects: np.ndarray, segs: np.ndarray,
                        eps: float = EPS,
                        chunk_elems: int = 2_000_000) -> np.ndarray:
    """Visibility matrix (A, B): sight line from each source to each target.

    One broadcast evaluates ``chunk ⨯ B ⨯ (N + M)`` obstacle tests at a time;
    ``chunk_elems`` bounds the intermediate array size.
    """
    a = sources.shape[0]
    b = targets.shape[0]
    out = np.ones((a, b), dtype=bool)
    if a == 0 or b == 0 or (rects.size == 0 and segs.size == 0):
        return out
    per_row = max(1, b * max(rects.shape[0] + segs.shape[0], 1))
    rows_per_chunk = max(1, chunk_elems // per_row)
    tx = targets[:, 0][None, :, None]
    ty = targets[:, 1][None, :, None]
    for start in range(0, a, rows_per_chunk):
        stop = min(start + rows_per_chunk, a)
        sx = sources[start:stop, 0][:, None, None]
        sy = sources[start:stop, 1][:, None, None]
        visible = np.ones((stop - start, b), dtype=bool)
        if rects.size:
            blocked = crosses_rect_interior(
                sx, sy, tx, ty,
                rects[None, None, :, 0], rects[None, None, :, 1],
                rects[None, None, :, 2], rects[None, None, :, 3],
                eps,
            ).any(axis=2)
            visible &= ~blocked
        if segs.size:
            blocked = proper_cross_segments(
                sx, sy, tx, ty,
                segs[None, None, :, 0], segs[None, None, :, 1],
                segs[None, None, :, 2], segs[None, None, :, 3],
                eps,
            ).any(axis=2)
            visible &= ~blocked
        out[start:stop] = visible
    return out
