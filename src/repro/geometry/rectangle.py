"""Axis-aligned rectangles (MBRs).

:class:`Rect` doubles as the minimum bounding rectangle used by the R*-tree
and as the geometric footprint of rectangular obstacles.  All distance
helpers used by query processing (``mindist`` to points and to segments) live
here.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple

from .point import Point
from .predicates import EPS, seg_seg_dist


class Rect(NamedTuple):
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    # ------------------------------------------------------------------ shape
    @classmethod
    def from_points(cls, points: Iterable[tuple]) -> "Rect":
        """Smallest rectangle containing all of ``points``."""
        xs = []
        ys = []
        for x, y in points:
            xs.append(x)
            ys.append(y)
        if not xs:
            raise ValueError("Rect.from_points requires at least one point")
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        """Degenerate rectangle covering a single point."""
        return cls(x, y, x, y)

    def is_valid(self) -> bool:
        """True iff lows do not exceed highs."""
        return self.xlo <= self.xhi and self.ylo <= self.yhi

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    def area(self) -> float:
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter, the R*-tree split quality measure."""
        return self.width + self.height

    def center(self) -> Point:
        return Point((self.xlo + self.xhi) * 0.5, (self.ylo + self.yhi) * 0.5)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners in counter-clockwise order starting at (xlo, ylo)."""
        return (Point(self.xlo, self.ylo), Point(self.xhi, self.ylo),
                Point(self.xhi, self.yhi), Point(self.xlo, self.yhi))

    def edges(self) -> tuple[tuple[Point, Point], ...]:
        """The four boundary edges as point pairs (counter-clockwise)."""
        c = self.corners()
        return ((c[0], c[1]), (c[1], c[2]), (c[2], c[3]), (c[3], c[0]))

    # ----------------------------------------------------------- set algebra
    def union(self, other: "Rect") -> "Rect":
        return Rect(min(self.xlo, other.xlo), min(self.ylo, other.ylo),
                    max(self.xhi, other.xhi), max(self.yhi, other.yhi))

    def intersects(self, other: "Rect") -> bool:
        """True iff the closed rectangles share at least one point."""
        return (self.xlo <= other.xhi and other.xlo <= self.xhi and
                self.ylo <= other.yhi and other.ylo <= self.yhi)

    def intersection_area(self, other: "Rect") -> float:
        w = min(self.xhi, other.xhi) - max(self.xlo, other.xlo)
        h = min(self.yhi, other.yhi) - max(self.ylo, other.ylo)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def contains_rect(self, other: "Rect") -> bool:
        return (self.xlo <= other.xlo + EPS and other.xhi <= self.xhi + EPS and
                self.ylo <= other.ylo + EPS and other.yhi <= self.yhi + EPS)

    def contains_point(self, x: float, y: float) -> bool:
        """Closed containment test."""
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def contains_point_open(self, x: float, y: float, eps: float = EPS) -> bool:
        """Strict interior containment test."""
        return (self.xlo + eps < x < self.xhi - eps and
                self.ylo + eps < y < self.yhi - eps)

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed for this rectangle to also cover ``other``."""
        return self.union(other).area() - self.area()

    def expanded(self, delta: float) -> "Rect":
        """Rectangle grown by ``delta`` on every side."""
        return Rect(self.xlo - delta, self.ylo - delta,
                    self.xhi + delta, self.yhi + delta)

    # -------------------------------------------------------------- distance
    def mindist_point(self, x: float, y: float) -> float:
        """Minimum distance from the rectangle to a point (0 when inside)."""
        dx = max(self.xlo - x, 0.0, x - self.xhi)
        dy = max(self.ylo - y, 0.0, y - self.yhi)
        return math.hypot(dx, dy)

    def maxdist_point(self, x: float, y: float) -> float:
        """Maximum distance from the rectangle (its farthest corner) to a point."""
        dx = max(abs(self.xlo - x), abs(self.xhi - x))
        dy = max(abs(self.ylo - y), abs(self.yhi - y))
        return math.hypot(dx, dy)

    def mindist_rect(self, other: "Rect") -> float:
        """Minimum distance between two closed rectangles (0 when overlapping)."""
        dx = max(self.xlo - other.xhi, 0.0, other.xlo - self.xhi)
        dy = max(self.ylo - other.yhi, 0.0, other.ylo - self.yhi)
        return math.hypot(dx, dy)

    def mindist_segment(self, ax: float, ay: float, bx: float, by: float) -> float:
        """Minimum distance from the rectangle to the closed segment ``[a, b]``.

        Zero when the segment touches or crosses the rectangle.  This is the
        ``mindist(N, q)`` lower bound the CONN algorithms key their priority
        queues on.
        """
        # Quick accept: an endpoint inside the rectangle.
        if self.contains_point(ax, ay) or self.contains_point(bx, by):
            return 0.0
        best = math.inf
        for (p, q) in self.edges():
            d = seg_seg_dist(p.x, p.y, q.x, q.y, ax, ay, bx, by)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
        return best
