"""One-dimensional interval sets over the query segment's parameter axis.

Visible regions, control-point regions, and result-list regions are all
subsets of the query segment ``q``, represented here as sorted lists of
disjoint closed intervals ``[lo, hi]`` in arc-length coordinates.  The CONN
algorithms lean on this class for every region operation (Lemma 5's
``VR_v - VR_u``, RLU's interval intersections, and so on), so the invariants
are strict and eps-guarded:

* intervals are sorted by ``lo``;
* consecutive intervals are separated by more than ``merge_eps``;
* every interval has positive measure (``hi - lo > merge_eps``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

MERGE_EPS = 1e-9
"""Intervals closer than this are coalesced; thinner than this are dropped."""

Interval = Tuple[float, float]


class IntervalSet:
    """A set of disjoint closed intervals on a line, with set algebra."""

    __slots__ = ("_ivals",)

    def __init__(self, intervals: Iterable[Interval] = (), *, _trusted: bool = False):
        if _trusted:
            self._ivals: List[Interval] = list(intervals)
        else:
            self._ivals = _normalize(intervals)

    # ------------------------------------------------------------- factories
    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls((), _trusted=True)

    @classmethod
    def full(cls, lo: float, hi: float) -> "IntervalSet":
        if hi - lo <= MERGE_EPS:
            return cls.empty()
        return cls([(lo, hi)], _trusted=True)

    # ------------------------------------------------------------ inspection
    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivals)

    def __len__(self) -> int:
        return len(self._ivals)

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        if len(self._ivals) != len(other._ivals):
            return False
        return all(abs(a[0] - b[0]) <= MERGE_EPS and abs(a[1] - b[1]) <= MERGE_EPS
                   for a, b in zip(self._ivals, other._ivals))

    def __hash__(self):  # pragma: no cover - sets are not meant to be hashed
        raise TypeError("IntervalSet is unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"[{lo:.6g}, {hi:.6g}]" for lo, hi in self._ivals)
        return f"IntervalSet({inner})"

    @property
    def intervals(self) -> List[Interval]:
        """The underlying sorted interval list (do not mutate)."""
        return self._ivals

    def measure(self) -> float:
        """Total length covered."""
        return sum(hi - lo for lo, hi in self._ivals)

    def is_empty(self) -> bool:
        return not self._ivals

    def span(self) -> Interval | None:
        """``(min lo, max hi)`` or ``None`` when empty."""
        if not self._ivals:
            return None
        return (self._ivals[0][0], self._ivals[-1][1])

    def contains(self, t: float, eps: float = MERGE_EPS) -> bool:
        """True iff ``t`` lies in some interval (eps-grown)."""
        lo_idx = _bisect_hi(self._ivals, t - eps)
        if lo_idx >= len(self._ivals):
            return False
        lo, hi = self._ivals[lo_idx]
        return lo - eps <= t <= hi + eps

    # ------------------------------------------------------------- operators
    def union(self, other: "IntervalSet") -> "IntervalSet":
        if not self._ivals:
            return IntervalSet(other._ivals, _trusted=True)
        if not other._ivals:
            return IntervalSet(self._ivals, _trusted=True)
        return IntervalSet(_merge_sorted(self._ivals, other._ivals))

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Interval] = []
        a = self._ivals
        b = other._ivals
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi - lo > MERGE_EPS:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(out, _trusted=True)

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Interval] = []
        b = other._ivals
        j = 0
        for lo, hi in self._ivals:
            cur = lo
            while j < len(b) and b[j][1] <= cur:
                j += 1
            k = j
            while k < len(b) and b[k][0] < hi:
                blo, bhi = b[k]
                if blo - cur > MERGE_EPS:
                    out.append((cur, min(blo, hi)))
                cur = max(cur, bhi)
                if cur >= hi:
                    break
                k += 1
            if hi - cur > MERGE_EPS:
                out.append((cur, hi))
        return IntervalSet(out, _trusted=True)

    def complement(self, lo: float, hi: float) -> "IntervalSet":
        """The portion of ``[lo, hi]`` not covered by this set."""
        return IntervalSet.full(lo, hi).subtract(self)

    def clipped(self, lo: float, hi: float) -> "IntervalSet":
        """This set intersected with ``[lo, hi]``."""
        return self.intersect(IntervalSet.full(lo, hi))

    def subtract_interval(self, lo: float, hi: float) -> "IntervalSet":
        return self.subtract(IntervalSet.full(lo, hi))

    def covers(self, lo: float, hi: float, eps: float = 1e-7) -> bool:
        """True iff ``[lo, hi]`` is covered up to a total gap of ``eps``."""
        gap = IntervalSet.full(lo, hi).subtract(self).measure()
        return gap <= eps

    def boundaries(self) -> List[float]:
        """All interval endpoints in ascending order."""
        out: List[float] = []
        for lo, hi in self._ivals:
            out.append(lo)
            out.append(hi)
        return out


def _normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort, drop slivers, and coalesce near-touching intervals."""
    cleaned = [(lo, hi) for lo, hi in intervals if hi - lo > MERGE_EPS]
    cleaned.sort()
    out: List[Interval] = []
    for lo, hi in cleaned:
        if out and lo <= out[-1][1] + MERGE_EPS:
            if hi > out[-1][1]:
                out[-1] = (out[-1][0], hi)
        else:
            out.append((lo, hi))
    return out


def _merge_sorted(a: List[Interval], b: List[Interval]) -> List[Interval]:
    merged = sorted(a + b)
    out: List[Interval] = []
    for lo, hi in merged:
        if out and lo <= out[-1][1] + MERGE_EPS:
            if hi > out[-1][1]:
                out[-1] = (out[-1][0], hi)
        else:
            out.append((lo, hi))
    return out


def _bisect_hi(ivals: List[Interval], t: float) -> int:
    """Index of the first interval whose ``hi`` is >= ``t``."""
    lo = 0
    hi = len(ivals)
    while lo < hi:
        mid = (lo + hi) // 2
        if ivals[mid][1] < t:
            lo = mid + 1
        else:
            hi = mid
    return lo
