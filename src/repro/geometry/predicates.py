"""Scalar geometric predicates.

These are the exact (up to floating-point epsilon) building blocks used by the
visibility machinery.  The central conventions, shared with the vectorized
implementations in :mod:`repro.geometry.vectorized`:

* An obstacle blocks a sight line only when the line passes through the
  obstacle's *open interior* (for rectangles) or *properly crosses* it (for
  segment obstacles).  Touching a vertex, running along an edge, or ending on
  the boundary never blocks — shortest obstructed paths bend exactly at
  obstacle vertices, so grazing contact must count as visible.
* ``EPS`` is an absolute tolerance appropriate for the paper's normalized
  ``[0, 10000]^2`` space; all comparisons are eps-guarded.
"""

from __future__ import annotations

import math

EPS = 1e-9
"""Absolute tolerance for coordinate comparisons."""


def orient(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> float:
    """Signed twice-area of triangle ``abc``.

    Positive when ``c`` lies to the left of the directed line ``a -> b``,
    negative to the right, and (near) zero when collinear.
    """
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def orient_sign(ax: float, ay: float, bx: float, by: float, cx: float, cy: float,
                eps: float = EPS) -> int:
    """Sign of :func:`orient` with an epsilon-wide collinearity band."""
    v = orient(ax, ay, bx, by, cx, cy)
    # Scale the tolerance with the magnitudes involved so long segments in a
    # large space do not mis-classify.
    scale = max(abs(bx - ax) + abs(by - ay), 1.0) * max(abs(cx - ax) + abs(cy - ay), 1.0)
    tol = eps * scale
    if v > tol:
        return 1
    if v < -tol:
        return -1
    return 0


def segments_properly_cross(ax: float, ay: float, bx: float, by: float,
                            cx: float, cy: float, dx: float, dy: float) -> bool:
    """True iff open segments ``(a,b)`` and ``(c,d)`` cross at a single interior point.

    Touching at endpoints, collinear overlap, or mere grazing contact is *not*
    a proper crossing (and therefore does not block visibility).
    """
    o1 = orient_sign(ax, ay, bx, by, cx, cy)
    o2 = orient_sign(ax, ay, bx, by, dx, dy)
    if o1 == 0 or o2 == 0 or o1 == o2:
        return False
    o3 = orient_sign(cx, cy, dx, dy, ax, ay)
    o4 = orient_sign(cx, cy, dx, dy, bx, by)
    if o3 == 0 or o4 == 0 or o3 == o4:
        return False
    return True


def segments_intersect(ax: float, ay: float, bx: float, by: float,
                       cx: float, cy: float, dx: float, dy: float) -> bool:
    """True iff closed segments ``[a,b]`` and ``[c,d]`` share at least one point."""
    o1 = orient_sign(ax, ay, bx, by, cx, cy)
    o2 = orient_sign(ax, ay, bx, by, dx, dy)
    o3 = orient_sign(cx, cy, dx, dy, ax, ay)
    o4 = orient_sign(cx, cy, dx, dy, bx, by)
    if o1 != o2 and o3 != o4:
        return True
    # Collinear touching cases.
    if o1 == 0 and _on_segment(ax, ay, bx, by, cx, cy):
        return True
    if o2 == 0 and _on_segment(ax, ay, bx, by, dx, dy):
        return True
    if o3 == 0 and _on_segment(cx, cy, dx, dy, ax, ay):
        return True
    if o4 == 0 and _on_segment(cx, cy, dx, dy, bx, by):
        return True
    return False


def _on_segment(ax: float, ay: float, bx: float, by: float,
                px: float, py: float, eps: float = EPS) -> bool:
    """True iff ``p`` (assumed collinear with ``a``-``b``) lies within the bbox of ``[a, b]``."""
    return (min(ax, bx) - eps <= px <= max(ax, bx) + eps and
            min(ay, by) - eps <= py <= max(ay, by) + eps)


def point_seg_dist(px: float, py: float, ax: float, ay: float,
                   bx: float, by: float) -> float:
    """Euclidean distance from point ``p`` to closed segment ``[a, b]``."""
    abx = bx - ax
    aby = by - ay
    denom = abx * abx + aby * aby
    if denom <= 0.0:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * abx + (py - ay) * aby) / denom
    if t < 0.0:
        t = 0.0
    elif t > 1.0:
        t = 1.0
    cx = ax + t * abx
    cy = ay + t * aby
    return math.hypot(px - cx, py - cy)


def seg_seg_dist(ax: float, ay: float, bx: float, by: float,
                 cx: float, cy: float, dx: float, dy: float) -> float:
    """Euclidean distance between closed segments ``[a,b]`` and ``[c,d]``."""
    if segments_intersect(ax, ay, bx, by, cx, cy, dx, dy):
        return 0.0
    return min(
        point_seg_dist(ax, ay, cx, cy, dx, dy),
        point_seg_dist(bx, by, cx, cy, dx, dy),
        point_seg_dist(cx, cy, ax, ay, bx, by),
        point_seg_dist(dx, dy, ax, ay, bx, by),
    )


def clip_segment_to_rect(ax: float, ay: float, bx: float, by: float,
                         xlo: float, ylo: float, xhi: float, yhi: float):
    """Liang–Barsky clip of segment ``[a, b]`` against a closed rectangle.

    Returns:
        ``(t0, t1)`` parameters along ``a + t (b - a)`` of the clipped portion
        with ``0 <= t0 <= t1 <= 1``, or ``None`` when the segment misses the
        rectangle entirely.
    """
    dx = bx - ax
    dy = by - ay
    t0 = 0.0
    t1 = 1.0
    for p, q in ((-dx, ax - xlo), (dx, xhi - ax), (-dy, ay - ylo), (dy, yhi - ay)):
        if p == 0.0:
            if q < 0.0:
                return None
            continue
        r = q / p
        if p < 0.0:
            if r > t1:
                return None
            if r > t0:
                t0 = r
        else:
            if r < t0:
                return None
            if r < t1:
                t1 = r
    return (t0, t1)


def point_in_rect_open(px: float, py: float, xlo: float, ylo: float,
                       xhi: float, yhi: float, eps: float = EPS) -> bool:
    """True iff ``p`` lies strictly inside the rectangle (eps-shrunk)."""
    return (xlo + eps < px < xhi - eps) and (ylo + eps < py < yhi - eps)


def point_in_rect_closed(px: float, py: float, xlo: float, ylo: float,
                         xhi: float, yhi: float, eps: float = EPS) -> bool:
    """True iff ``p`` lies inside or on the boundary of the rectangle (eps-grown)."""
    return (xlo - eps <= px <= xhi + eps) and (ylo - eps <= py <= yhi + eps)


def segment_crosses_rect_interior(ax: float, ay: float, bx: float, by: float,
                                  xlo: float, ylo: float, xhi: float, yhi: float,
                                  eps: float = EPS) -> bool:
    """True iff segment ``[a, b]`` passes through the rectangle's open interior.

    Degenerate rectangles (zero width or height) have empty interiors and
    never block.  A segment running exactly along an edge does not block: the
    midpoint of its clipped portion sits on the boundary, not strictly inside.
    """
    if xhi - xlo <= eps or yhi - ylo <= eps:
        return False
    clip = clip_segment_to_rect(ax, ay, bx, by, xlo, ylo, xhi, yhi)
    if clip is None:
        return False
    t0, t1 = clip
    if t1 - t0 <= eps:
        return False
    tm = (t0 + t1) * 0.5
    mx = ax + tm * (bx - ax)
    my = ay + tm * (by - ay)
    # Strictness tolerance scaled to the rectangle so thin rectangles still
    # register interior crossings.
    ex = min(eps, (xhi - xlo) * 1e-7)
    ey = min(eps, (yhi - ylo) * 1e-7)
    return (xlo + ex < mx < xhi - ex) and (ylo + ey < my < yhi - ey)


def point_in_triangle(px: float, py: float, ax: float, ay: float,
                      bx: float, by: float, cx: float, cy: float) -> bool:
    """True iff ``p`` lies inside or on the boundary of triangle ``abc``."""
    s1 = orient_sign(ax, ay, bx, by, px, py)
    s2 = orient_sign(bx, by, cx, cy, px, py)
    s3 = orient_sign(cx, cy, ax, ay, px, py)
    has_neg = (s1 < 0) or (s2 < 0) or (s3 < 0)
    has_pos = (s1 > 0) or (s2 > 0) or (s3 > 0)
    return not (has_neg and has_pos)


def line_line_intersection(ax: float, ay: float, bx: float, by: float,
                           cx: float, cy: float, dx: float, dy: float):
    """Intersection of infinite lines ``a-b`` and ``c-d``.

    Returns:
        ``(t, u)`` where the intersection is ``a + t (b - a)`` and
        ``c + u (d - c)``, or ``None`` for (near-)parallel lines.
    """
    rX = bx - ax
    rY = by - ay
    sX = dx - cx
    sY = dy - cy
    denom = rX * sY - rY * sX
    scale = max(abs(rX) + abs(rY), 1.0) * max(abs(sX) + abs(sY), 1.0)
    if abs(denom) <= EPS * scale:
        return None
    qpX = cx - ax
    qpY = cy - ay
    t = (qpX * sY - qpY * sX) / denom
    u = (qpX * rY - qpY * rX) / denom
    return (t, u)
