"""Directed line segments parametrized by arc length.

:class:`Segment` is the geometric type used both for the query line segment
``q = [S, E]`` and for segment obstacles.  Positions along a segment are
identified by their arc-length parameter ``t`` in ``[0, length]`` — the same
coordinate the paper's split-point machinery works in (its "x" axis of
Figure 4), which makes distances along the segment read directly in world
units.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from .point import Point
from .predicates import EPS, line_line_intersection, point_seg_dist


class Segment(NamedTuple):
    """A directed closed segment from ``(ax, ay)`` to ``(bx, by)``."""

    ax: float
    ay: float
    bx: float
    by: float

    @classmethod
    def from_points(cls, a: tuple, b: tuple) -> "Segment":
        (ax, ay), (bx, by) = a, b
        return cls(float(ax), float(ay), float(bx), float(by))

    @property
    def start(self) -> Point:
        return Point(self.ax, self.ay)

    @property
    def end(self) -> Point:
        return Point(self.bx, self.by)

    @property
    def length(self) -> float:
        return math.hypot(self.bx - self.ax, self.by - self.ay)

    def direction(self) -> Point:
        """Unit direction vector from start to end.

        Raises:
            ZeroDivisionError: for a degenerate (zero-length) segment.
        """
        ln = self.length
        if ln == 0.0:
            raise ZeroDivisionError("degenerate segment has no direction")
        return Point((self.bx - self.ax) / ln, (self.by - self.ay) / ln)

    def point_at(self, t: float) -> Point:
        """The point at arc-length parameter ``t`` (clamped to ``[0, length]``)."""
        ln = self.length
        if ln == 0.0:
            return self.start
        t = min(max(t, 0.0), ln)
        f = t / ln
        return Point(self.ax + f * (self.bx - self.ax),
                     self.ay + f * (self.by - self.ay))

    def param_of(self, x: float, y: float) -> float:
        """Arc-length parameter of the projection of ``(x, y)`` onto the segment's line.

        Not clamped: points projecting before the start yield negative values.
        """
        ln = self.length
        if ln == 0.0:
            return 0.0
        dx = self.bx - self.ax
        dy = self.by - self.ay
        return ((x - self.ax) * dx + (y - self.ay) * dy) / ln

    def param_clamped(self, x: float, y: float) -> float:
        """Arc-length parameter of the closest point of the segment to ``(x, y)``."""
        return min(max(self.param_of(x, y), 0.0), self.length)

    def dist_point(self, x: float, y: float) -> float:
        """Euclidean distance from ``(x, y)`` to the closed segment."""
        return point_seg_dist(x, y, self.ax, self.ay, self.bx, self.by)

    def line_intersection_param(self, cx: float, cy: float,
                                dx: float, dy: float) -> float | None:
        """Arc-length parameter where this segment's *line* meets line ``c-d``.

        Returns ``None`` for (near-)parallel lines.  The result may lie
        outside ``[0, length]``; callers clip as needed.
        """
        hit = line_line_intersection(self.ax, self.ay, self.bx, self.by,
                                     cx, cy, dx, dy)
        if hit is None:
            return None
        t_frac, _u = hit
        return t_frac * self.length

    def reversed(self) -> "Segment":
        return Segment(self.bx, self.by, self.ax, self.ay)

    def bbox(self):
        """``(xlo, ylo, xhi, yhi)`` bounding box of the segment."""
        return (min(self.ax, self.bx), min(self.ay, self.by),
                max(self.ax, self.bx), max(self.ay, self.by))

    def is_degenerate(self) -> bool:
        return self.length <= EPS
