"""Planar geometry kernel: points, segments, rectangles, interval sets.

Everything above this package (R*-tree, visibility graphs, CONN processing)
expresses its geometry through these primitives.
"""

from .interval import MERGE_EPS, IntervalSet
from .point import Point, as_point, dist, dist_sq, lerp, midpoint
from .predicates import (
    EPS,
    clip_segment_to_rect,
    line_line_intersection,
    orient,
    orient_sign,
    point_in_rect_closed,
    point_in_rect_open,
    point_in_triangle,
    point_seg_dist,
    seg_seg_dist,
    segment_crosses_rect_interior,
    segments_intersect,
    segments_properly_cross,
)
from .rectangle import Rect
from .segment import Segment

__all__ = [
    "EPS",
    "MERGE_EPS",
    "IntervalSet",
    "Point",
    "Rect",
    "Segment",
    "as_point",
    "clip_segment_to_rect",
    "dist",
    "dist_sq",
    "lerp",
    "line_line_intersection",
    "midpoint",
    "orient",
    "orient_sign",
    "point_in_rect_closed",
    "point_in_rect_open",
    "point_in_triangle",
    "point_seg_dist",
    "seg_seg_dist",
    "segment_crosses_rect_interior",
    "segments_intersect",
    "segments_properly_cross",
]
