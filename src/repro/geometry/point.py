"""Planar point type and elementary point arithmetic.

Points are immutable ``(x, y)`` pairs.  Throughout the library points are
represented either as :class:`Point` instances or as plain ``(x, y)`` tuples;
every public function accepts both, because the hot paths convert to raw
floats immediately.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple


class Point(NamedTuple):
    """An immutable point in the plane.

    Being a :class:`~typing.NamedTuple`, a :class:`Point` unpacks like a
    tuple, compares by value, and is hashable, which lets points serve as
    visibility-graph node keys directly.
    """

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":  # type: ignore[override]
        ox, oy = other
        return Point(self.x + ox, self.y + oy)

    def __sub__(self, other: "Point") -> "Point":
        ox, oy = other
        return Point(self.x - ox, self.y - oy)

    def __mul__(self, scalar: float) -> "Point":  # type: ignore[override]
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        """Dot product with another point treated as a vector."""
        ox, oy = other
        return self.x * ox + self.y * oy

    def cross(self, other: "Point") -> float:
        """Z component of the cross product with ``other``."""
        ox, oy = other
        return self.x * oy - self.y * ox

    def norm(self) -> float:
        """Euclidean length of the vector from the origin."""
        return math.hypot(self.x, self.y)

    def dist(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        ox, oy = other
        return math.hypot(self.x - ox, self.y - oy)

    def dist_sq(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (no sqrt)."""
        ox, oy = other
        dx = self.x - ox
        dy = self.y - oy
        return dx * dx + dy * dy

    def normalized(self) -> "Point":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the zero vector.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def perp(self) -> "Point":
        """The vector rotated 90 degrees counter-clockwise."""
        return Point(-self.y, self.x)


PointLike = Point | tuple


def as_point(p: PointLike) -> Point:
    """Coerce a ``(x, y)`` pair into a :class:`Point`."""
    if isinstance(p, Point):
        return p
    x, y = p
    return Point(float(x), float(y))


def dist(a: PointLike, b: PointLike) -> float:
    """Euclidean distance between two point-likes."""
    ax, ay = a
    bx, by = b
    return math.hypot(ax - bx, ay - by)


def dist_sq(a: PointLike, b: PointLike) -> float:
    """Squared Euclidean distance between two point-likes."""
    ax, ay = a
    bx, by = b
    dx = ax - bx
    dy = ay - by
    return dx * dx + dy * dy


def midpoint(a: PointLike, b: PointLike) -> Point:
    """The midpoint of segment ``[a, b]``."""
    ax, ay = a
    bx, by = b
    return Point((ax + bx) * 0.5, (ay + by) * 0.5)


def lerp(a: PointLike, b: PointLike, t: float) -> Point:
    """Linear interpolation ``a + t * (b - a)``."""
    ax, ay = a
    bx, by = b
    return Point(ax + t * (bx - ax), ay + t * (by - ay))


def iter_points(coords: Iterator[tuple]) -> Iterator[Point]:
    """Yield :class:`Point` objects from an iterable of pairs."""
    for c in coords:
        yield as_point(c)
