"""Synthetic dataset generators (Section 5.1 of the paper).

The paper's synthetic data: points drawn uniformly or with zipf skew
(coefficient alpha = 0.8) over a normalized ``[0, 10000]^2`` space, with the
two coordinates independent.  Obstacle generators produce rectangles or thin
segment "walls".  All generators are deterministic given a seeded
``random.Random``.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..obstacles.obstacle import Obstacle, RectObstacle, SegmentObstacle

SPACE = (0.0, 0.0, 10000.0, 10000.0)
"""The paper's normalized search space."""

Bounds = Tuple[float, float, float, float]
XY = Tuple[float, float]


def uniform_points(n: int, rng: random.Random,
                   bounds: Bounds = SPACE) -> List[XY]:
    """``n`` points uniform in ``bounds``, coordinates independent."""
    xlo, ylo, xhi, yhi = bounds
    return [(rng.uniform(xlo, xhi), rng.uniform(ylo, yhi)) for _ in range(n)]


def zipf_value(rng: random.Random, alpha: float) -> float:
    """One zipf-skewed value in ``[0, 1]`` with skew coefficient ``alpha``.

    Inverse-CDF of the continuous zipf-like density ``f(x) ~ x^(-alpha)`` on
    ``(0, 1]``: small values are heavily favored as ``alpha -> 1``.
    """
    if not 0.0 <= alpha < 1.0:
        raise ValueError("alpha must be in [0, 1)")
    u = rng.random()
    return u ** (1.0 / (1.0 - alpha))


def zipf_points(n: int, rng: random.Random, alpha: float = 0.8,
                bounds: Bounds = SPACE) -> List[XY]:
    """``n`` points with independent zipf-skewed coordinates (paper default
    ``alpha = 0.8``), skewed toward the low corner of ``bounds``."""
    xlo, ylo, xhi, yhi = bounds
    return [(xlo + (xhi - xlo) * zipf_value(rng, alpha),
             ylo + (yhi - ylo) * zipf_value(rng, alpha)) for _ in range(n)]


def gaussian_cluster_points(n: int, rng: random.Random,
                            centers: Sequence[XY], sigma: float,
                            bounds: Bounds = SPACE) -> List[XY]:
    """``n`` points from an equal-weight Gaussian mixture, clipped to bounds."""
    xlo, ylo, xhi, yhi = bounds
    out: List[XY] = []
    while len(out) < n:
        cx, cy = centers[rng.randrange(len(centers))]
        x = rng.gauss(cx, sigma)
        y = rng.gauss(cy, sigma)
        if xlo <= x <= xhi and ylo <= y <= yhi:
            out.append((x, y))
    return out


def random_rect_obstacles(n: int, rng: random.Random,
                          width_range: Tuple[float, float] = (20.0, 200.0),
                          height_range: Tuple[float, float] = (20.0, 200.0),
                          bounds: Bounds = SPACE) -> List[Obstacle]:
    """``n`` axis-aligned rectangular obstacles with uniform extents."""
    xlo, ylo, xhi, yhi = bounds
    out: List[Obstacle] = []
    for _ in range(n):
        w = rng.uniform(*width_range)
        h = rng.uniform(*height_range)
        x = rng.uniform(xlo, xhi - w)
        y = rng.uniform(ylo, yhi - h)
        out.append(RectObstacle(x, y, x + w, y + h))
    return out


def random_segment_obstacles(n: int, rng: random.Random,
                             length_range: Tuple[float, float] = (50.0, 400.0),
                             bounds: Bounds = SPACE) -> List[Obstacle]:
    """``n`` thin-wall obstacles with uniform position and orientation."""
    import math

    xlo, ylo, xhi, yhi = bounds
    out: List[Obstacle] = []
    for _ in range(n):
        ln = rng.uniform(*length_range)
        theta = rng.uniform(0.0, 2.0 * math.pi)
        x = rng.uniform(xlo, xhi)
        y = rng.uniform(ylo, yhi)
        bx = min(max(x + ln * math.cos(theta), xlo), xhi)
        by = min(max(y + ln * math.sin(theta), ylo), yhi)
        out.append(SegmentObstacle(x, y, bx, by))
    return out


class ObstacleGrid:
    """A uniform grid over rectangular obstacle interiors for fast lookups.

    Used by generators (reject points inside obstacles) and by the workload
    generator (reject query segments crossing obstacle interiors) without an
    R-tree dependency.
    """

    def __init__(self, obstacles: Sequence[Obstacle], bounds: Bounds = SPACE,
                 cells: int = 64):
        self.bounds = bounds
        self.cells = cells
        self._grid: dict[Tuple[int, int], List[RectObstacle]] = {}
        xlo, ylo, xhi, yhi = bounds
        self._sx = cells / (xhi - xlo)
        self._sy = cells / (yhi - ylo)
        for o in obstacles:
            if not isinstance(o, RectObstacle):
                continue
            r = o.rect
            for cx in range(self._cell_x(r.xlo), self._cell_x(r.xhi) + 1):
                for cy in range(self._cell_y(r.ylo), self._cell_y(r.yhi) + 1):
                    self._grid.setdefault((cx, cy), []).append(o)

    def _cell_x(self, x: float) -> int:
        return min(max(int((x - self.bounds[0]) * self._sx), 0), self.cells - 1)

    def _cell_y(self, y: float) -> int:
        return min(max(int((y - self.bounds[1]) * self._sy), 0), self.cells - 1)

    def inside_any(self, x: float, y: float) -> bool:
        """True iff ``(x, y)`` is strictly inside some rectangular obstacle."""
        for o in self._grid.get((self._cell_x(x), self._cell_y(y)), ()):
            if o.rect.contains_point_open(x, y):
                return True
        return False

    def candidates_near(self, xlo: float, ylo: float,
                        xhi: float, yhi: float) -> List[RectObstacle]:
        """Obstacles whose cells overlap the given box (may contain duplicates)."""
        out: List[RectObstacle] = []
        for cx in range(self._cell_x(xlo), self._cell_x(xhi) + 1):
            for cy in range(self._cell_y(ylo), self._cell_y(yhi) + 1):
                out.extend(self._grid.get((cx, cy), ()))
        return out


def reject_inside_obstacles(points: List[XY], obstacles: Sequence[Obstacle],
                            rng: random.Random,
                            bounds: Bounds = SPACE) -> List[XY]:
    """Resample any point strictly inside an obstacle interior.

    The paper allows points *on* obstacle boundaries but not inside
    (Section 5.1); replacement points are drawn uniformly.
    """
    grid = ObstacleGrid(obstacles, bounds)
    xlo, ylo, xhi, yhi = bounds
    out: List[XY] = []
    for x, y in points:
        attempts = 0
        while grid.inside_any(x, y) and attempts < 1000:
            x = rng.uniform(xlo, xhi)
            y = rng.uniform(ylo, yhi)
            attempts += 1
        out.append((x, y))
    return out
