"""Dataset generators: synthetic distributions and CA/LA-like stand-ins."""

from .real_like import (
    CA_SIZE,
    LA_SIZE,
    california_like_points,
    la_street_obstacles,
)
from .synthetic import (
    SPACE,
    ObstacleGrid,
    gaussian_cluster_points,
    random_rect_obstacles,
    random_segment_obstacles,
    reject_inside_obstacles,
    uniform_points,
    zipf_points,
    zipf_value,
)

__all__ = [
    "CA_SIZE",
    "LA_SIZE",
    "ObstacleGrid",
    "SPACE",
    "california_like_points",
    "gaussian_cluster_points",
    "la_street_obstacles",
    "random_rect_obstacles",
    "random_segment_obstacles",
    "reject_inside_obstacles",
    "uniform_points",
    "zipf_points",
    "zipf_value",
]
