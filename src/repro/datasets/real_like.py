"""Synthetic stand-ins for the paper's real datasets (see DESIGN.md §3).

The paper evaluates on two real datasets from the (long defunct) R-tree
portal, unavailable offline:

* **CA** — 60,344 California location points: strongly clustered, arranged
  along a roughly diagonal (NW-SE) populated band.
* **LA** — 131,461 MBRs of Los Angeles streets: thin, axis-dominated,
  near-disjoint rectangles laid out in a block pattern.

``california_like_points`` strings Gaussian clusters along a noisy diagonal
band; ``la_street_obstacles`` emits thin street MBRs on a jittered block
grid with random gaps.  Both live in the same normalized ``[0, 10000]^2``
space and, for the query algorithms, reproduce the properties that matter:
R-tree locality, skew, obstacle thinness and density.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from ..obstacles.obstacle import Obstacle, RectObstacle
from .synthetic import SPACE, Bounds, XY, gaussian_cluster_points

CA_SIZE = 60344
"""Cardinality of the paper's CA dataset."""

LA_SIZE = 131461
"""Cardinality of the paper's LA dataset."""


def california_like_points(n: int, rng: random.Random,
                           bounds: Bounds = SPACE,
                           num_clusters: int = 48) -> List[XY]:
    """``n`` clustered points along a diagonal band (CA substitute)."""
    xlo, ylo, xhi, yhi = bounds
    w = xhi - xlo
    h = yhi - ylo
    centers: List[XY] = []
    for i in range(num_clusters):
        f = (i + 0.5) / num_clusters
        # A coastline-ish arc from the top-left to the bottom-right corner
        # with lateral noise; clusters thin out toward the ends.
        cx = xlo + w * (0.08 + 0.84 * f) + rng.gauss(0.0, 0.04 * w)
        cy = ylo + h * (0.92 - 0.84 * f) + rng.gauss(0.0, 0.10 * h)
        cx = min(max(cx, xlo), xhi)
        cy = min(max(cy, ylo), yhi)
        centers.append((cx, cy))
    sigma = 0.035 * min(w, h)
    return gaussian_cluster_points(n, rng, centers, sigma, bounds)


def la_street_obstacles(n: int, rng: random.Random,
                        bounds: Bounds = SPACE,
                        thickness_range: Tuple[float, float] = (4.0, 14.0),
                        fill: float = 0.82) -> List[Obstacle]:
    """``n`` thin street MBRs on a jittered block grid (LA substitute).

    Alternating horizontal and vertical street segments span grid blocks;
    ``fill`` is the probability a grid slot holds a street, producing the
    gaps and irregularity of a real street map.  Streets are near-disjoint
    thin rectangles, so the free space stays connected — matching how the
    paper's algorithms experience the LA data.
    """
    if n <= 0:
        return []
    xlo, ylo, xhi, yhi = bounds
    w = xhi - xlo
    h = yhi - ylo
    # Two street slots (one horizontal, one vertical) per block; choose the
    # grid so the expected slot count comfortably exceeds n.
    blocks = max(2, math.ceil(math.sqrt(n / (2.0 * fill))))
    bw = w / blocks
    bh = h / blocks
    out: List[Obstacle] = []
    slots: List[Tuple[int, int, bool]] = [
        (i, j, horizontal)
        for i in range(blocks) for j in range(blocks)
        for horizontal in (True, False)
    ]
    rng.shuffle(slots)
    for i, j, horizontal in slots:
        if len(out) >= n:
            break
        if rng.random() > fill:
            continue
        t = rng.uniform(*thickness_range)
        if horizontal:
            # A street along the bottom edge of block (i, j).
            x0 = xlo + i * bw + rng.uniform(0.0, 0.25) * bw
            x1 = xlo + (i + 1) * bw - rng.uniform(0.0, 0.25) * bw
            y0 = ylo + j * bh + rng.uniform(0.05, 0.4) * bh
            rect = (x0, y0, max(x1, x0 + t), y0 + t)
        else:
            y0 = ylo + j * bh + rng.uniform(0.0, 0.25) * bh
            y1 = ylo + (j + 1) * bh - rng.uniform(0.0, 0.25) * bh
            x0 = xlo + i * bw + rng.uniform(0.05, 0.4) * bw
            rect = (x0, y0, x0 + t, max(y1, y0 + t))
        out.append(RectObstacle(*rect))
    return out
