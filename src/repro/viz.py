"""Terminal visualization helpers (no plotting dependencies).

Two renderers cover most debugging needs:

* :func:`render_scene` — an ASCII map of obstacles, data points, and the
  query segment, so a failing geometry case can be *seen* in a test log;
* :func:`render_profile` — a block-character sparkline of a query result's
  distance function along ``q``, with split points marked, approximating
  the figures the paper draws.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence, Tuple

import numpy as np

from .core.engine import ConnResult
from .geometry.rectangle import Rect
from .geometry.segment import Segment
from .obstacles.obstacle import (
    Obstacle,
    ObstacleSet,
    PolygonObstacle,
    RectObstacle,
    SegmentObstacle,
)

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _bounds(points, obstacles, qseg) -> Rect:
    xs = []
    ys = []
    for _p, (x, y) in points:
        xs.append(x)
        ys.append(y)
    for o in obstacles:
        r = o.mbr()
        xs.extend((r.xlo, r.xhi))
        ys.extend((r.ylo, r.yhi))
    if qseg is not None:
        xs.extend((qseg.ax, qseg.bx))
        ys.extend((qseg.ay, qseg.by))
    if not xs:
        return Rect(0, 0, 1, 1)
    pad_x = max((max(xs) - min(xs)) * 0.05, 1e-9)
    pad_y = max((max(ys) - min(ys)) * 0.05, 1e-9)
    return Rect(min(xs) - pad_x, min(ys) - pad_y,
                max(xs) + pad_x, max(ys) + pad_y)


def render_scene(points: Sequence[Tuple[Any, Tuple[float, float]]],
                 obstacles: Iterable[Obstacle],
                 qseg: Optional[Segment] = None,
                 width: int = 72, height: int = 24) -> str:
    """ASCII map: obstacles ``#``, walls ``/``, points labeled, query ``=``.

    Point labels use the first character of ``str(payload)``; the query
    segment endpoints show as ``S`` and ``E``.
    """
    obstacles = list(obstacles)
    box = _bounds(points, obstacles, qseg)
    grid = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        cx = int((x - box.xlo) / (box.xhi - box.xlo) * (width - 1))
        # Row 0 is the top of the picture = maximum y.
        cy = int((box.yhi - y) / (box.yhi - box.ylo) * (height - 1))
        return min(max(cy, 0), height - 1), min(max(cx, 0), width - 1)

    def cell_center(row: int, col: int) -> Tuple[float, float]:
        x = box.xlo + (col + 0.5) / width * (box.xhi - box.xlo)
        y = box.yhi - (row + 0.5) / height * (box.yhi - box.ylo)
        return x, y

    oset = obstacles if isinstance(obstacles, ObstacleSet) else None
    for row in range(height):
        for col in range(width):
            x, y = cell_center(row, col)
            for o in obstacles:
                if isinstance(o, RectObstacle) and o.rect.contains_point(x, y):
                    grid[row][col] = "#"
                    break
                if isinstance(o, PolygonObstacle) and \
                        o.contains_interior(x, y):
                    grid[row][col] = "#"
                    break
    for o in obstacles:
        if isinstance(o, SegmentObstacle):
            s = o.seg
            steps = max(int(s.length / max(box.width / width,
                                           box.height / height)), 1)
            for i in range(steps + 1):
                p = s.point_at(s.length * i / steps)
                r, c = to_cell(p.x, p.y)
                grid[r][c] = "/"
    if qseg is not None:
        steps = max(width, 2)
        for i in range(steps + 1):
            p = qseg.point_at(qseg.length * i / steps)
            r, c = to_cell(p.x, p.y)
            if grid[r][c] == " ":
                grid[r][c] = "="
        r, c = to_cell(qseg.ax, qseg.ay)
        grid[r][c] = "S"
        r, c = to_cell(qseg.bx, qseg.by)
        grid[r][c] = "E"
    for payload, (x, y) in points:
        r, c = to_cell(x, y)
        label = str(payload)
        grid[r][c] = label[0] if label else "*"
    _ = oset
    return "\n".join("".join(row) for row in grid)


def render_profile(result: ConnResult, width: int = 72,
                   level: int = 0) -> str:
    """Sparkline of a result's distance function with split-point markers.

    The first line plots ``level``'s distance values scaled into eight
    block heights (``!`` marks unreachable stretches); the second line
    marks split points with ``^``.
    """
    qseg = result.qseg
    ts = np.linspace(0.0, qseg.length, width)
    vals = result.levels[level].values(ts)
    finite = np.isfinite(vals)
    chars = []
    if finite.any():
        lo = float(vals[finite].min())
        hi = float(vals[finite].max())
        span = max(hi - lo, 1e-12)
        for v in vals:
            if not math.isfinite(v):
                chars.append("!")
            else:
                idx = int((v - lo) / span * (len(_BLOCKS) - 1))
                chars.append(_BLOCKS[idx])
    else:
        chars = ["!"] * width
    marks = [" "] * width
    for sp in result.split_points():
        col = int(sp / qseg.length * (width - 1))
        marks[min(max(col, 0), width - 1)] = "^"
    lo_txt = f"{vals[finite].min():.1f}" if finite.any() else "inf"
    hi_txt = f"{vals[finite].max():.1f}" if finite.any() else "inf"
    return ("".join(chars) + "\n" + "".join(marks) +
            f"\nmin {lo_txt}  max {hi_txt}  splits "
            f"{[round(s, 1) for s in result.split_points()]}")
