"""Quadratic split-point computation (Section 3, Theorem 1).

A split point is a parameter ``t`` on the query segment where two candidate
paths tie:

    base_u + dist(u, q(t))  =  base_v + dist(v, q(t))

with ``u, v`` control points and ``base_*`` the obstructed distances from the
data point(s) to them.  Geometrically the solution set is the intersection of
``q`` with one branch of a hyperbola whose foci are ``u`` and ``v`` — hence
at most two split points (Theorem 1).

We solve it exactly the way the paper's Equation (1) arises: with ``q``
parametrized by arc length, both squared distances are *monic quadratics* in
``t``, so their difference is linear, and squaring the defining equation once
yields a single quadratic.  Spurious roots introduced by squaring are
filtered by re-substitution, and every accepted root is polished with Newton
steps on the exact residual (the squared form loses precision when the
coefficients reach ``1e17`` at the paper's coordinate scale).

The paper's Case 1-4 classification (Figure 4) is provided for analysis and
tests via :func:`classify_case`; the query engine itself relies on the root
solver plus midpoint evaluation, which handles every geometric configuration
uniformly — including the configurations (``a = 0``, ``b > c``, ...) the
paper notes would need separate case analyses.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.segment import Segment

_RESIDUAL_TOL = 1e-6
"""Accept a root when the path-length residual is below this (world units)."""

_ROOT_MERGE = 1e-9
"""Roots closer than this collapse into one."""

_ROOT_COALESCE = 1e-6
"""Polished roots closer than this (relative to the interval span) are one
tie point.

Near a tangency the residual is locally *quadratic* in ``t``, so Newton
cannot separate the two quadratic roots below roughly ``sqrt(eps)`` of the
coordinate scale; polishing the pair from slightly different seeds can
land them ``~1e-7`` apart and, with a tighter merge radius, report one
double root as two distinct split points in one argument order but not
the other.  Two genuine transversal crossings this close bound a piece
far below the envelope's merge tolerance — collapsing them is lossless."""


def dist_quadratic(qseg: Segment, px: float, py: float) -> Tuple[float, float]:
    """Coefficients ``(b, c)`` with ``dist(p, q(t))^2 = t^2 + b t + c``.

    Valid because ``q(t) = S + t * u`` with ``u`` a unit vector.
    """
    ln = qseg.length
    ux = (qseg.bx - qseg.ax) / ln
    uy = (qseg.by - qseg.ay) / ln
    wx = qseg.ax - px
    wy = qseg.ay - py
    b = 2.0 * (ux * wx + uy * wy)
    c = wx * wx + wy * wy
    return b, c


def dist_quadratic_batch(qseg: Segment, pxs: "np.ndarray", pys: "np.ndarray"
                         ) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized :func:`dist_quadratic` over arrays of control points.

    Elementwise bit-identical to the scalar function (the arithmetic is
    the same IEEE add/multiply/divide sequence, with no transcendental in
    sight), which is what lets the envelope piece table cache these
    coefficients for the split solver without perturbing any tie decision.
    Degenerate query segments yield NaN columns — callers never evaluate
    them (the piecewise machinery falls back to scalar paths at zero
    length).
    """
    ln = qseg.length
    if ln == 0.0:
        nan = np.full(np.shape(pxs), np.nan)
        return nan, nan.copy()
    ux = (qseg.bx - qseg.ax) / ln
    uy = (qseg.by - qseg.ay) / ln
    wx = qseg.ax - pxs
    wy = qseg.ay - pys
    return 2.0 * (ux * wx + uy * wy), wx * wx + wy * wy


def _value(b: float, c: float, t: float) -> float:
    """dist(p, q(t)) from the quadratic coefficients."""
    return math.sqrt(max(t * t + b * t + c, 0.0))


def crossing_params(qseg: Segment,
                    u_cp: Tuple[float, float], u_base: float,
                    v_cp: Tuple[float, float], v_base: float,
                    lo: float, hi: float,
                    u_quad: Optional[Tuple[float, float]] = None,
                    v_quad: Optional[Tuple[float, float]] = None
                    ) -> List[float]:
    """Parameters in the open interval ``(lo, hi)`` where the two paths tie.

    Args:
        u_cp, u_base: challenger's control point and path length to it.
        v_cp, v_base: incumbent's control point and path length to it.
        u_quad, v_quad: optional precomputed :func:`dist_quadratic`
            coefficients for the respective control point (the envelope
            piece table caches them); must equal what the scalar function
            would return.

    Returns:
        Sorted tie parameters (at most two by Theorem 1).
    """
    b1, c1 = (u_quad if u_quad is not None
              else dist_quadratic(qseg, u_cp[0], u_cp[1]))
    b2, c2 = (v_quad if v_quad is not None
              else dist_quadratic(qseg, v_cp[0], v_cp[1]))
    # Tie condition: sqrt(g) - sqrt(h) = d, with g the challenger's squared
    # distance, h the incumbent's, and d the base-length gap.
    d = v_base - u_base
    beta = b1 - b2
    gamma = c1 - c2

    def residual(t: float) -> float:
        return (u_base + _value(b1, c1, t)) - (v_base + _value(b2, c2, t))

    def residual_derivative(t: float) -> float:
        g = _value(b1, c1, t)
        h = _value(b2, c2, t)
        if g <= 0.0 or h <= 0.0:
            return 0.0
        return (t + 0.5 * b1) / g - (t + 0.5 * b2) / h

    scale = max(abs(beta), abs(gamma) ** 0.5, 1.0)
    candidates: List[float] = []
    if abs(d) <= 1e-12 * max(u_base, v_base, 1.0):
        # Equal bases: the tie locus is the radical axis -> linear equation.
        if abs(beta) > 1e-12 * scale:
            candidates.append(-gamma / beta)
    else:
        k = gamma - d * d
        a_coef = beta * beta - 4.0 * d * d
        b_coef = 2.0 * beta * k - 4.0 * d * d * b2
        c_coef = k * k - 4.0 * d * d * c2
        lin_scale = max(abs(b_coef), 1.0)
        if abs(a_coef) <= 1e-12 * max(beta * beta, 4 * d * d, 1.0):
            if abs(b_coef) > 1e-12 * lin_scale:
                candidates.append(-c_coef / b_coef)
        else:
            disc = b_coef * b_coef - 4.0 * a_coef * c_coef
            # A near-tangent tie (double root, e.g. a vanishing base gap)
            # can land the discriminant a rounding error below zero; treat
            # it as zero and let the residual filter reject false alarms.
            disc_tol = 1e-9 * max(b_coef * b_coef,
                                  abs(4.0 * a_coef * c_coef))
            if disc >= -disc_tol:
                sq = math.sqrt(max(disc, 0.0))
                # Numerically stable quadratic roots.
                if b_coef >= 0.0:
                    qq = -0.5 * (b_coef + sq)
                else:
                    qq = -0.5 * (b_coef - sq)
                candidates.append(qq / a_coef)
                if qq != 0.0:
                    candidates.append(c_coef / qq)
        # Degenerate identity: when both control points lie *on* the query
        # line, the two path functions are piecewise linear in ``t`` and can
        # coincide on a whole ray (e.g. ``t`` vs ``1 + |t - 1|`` for
        # ``t >= 1``).  Squaring then collapses to ``0 = 0`` — no quadratic
        # or linear coefficient survives — yet the tie set has a genuine
        # boundary: the cone apex (the parameter where a distance hits
        # zero and the linearization changes slope).  Offer both apexes as
        # candidates; the residual filter keeps only real tie points.
        for b_i, c_i in ((b1, c1), (b2, c2)):
            if c_i - 0.25 * b_i * b_i <= 1e-12 * max(c_i, 1.0):
                candidates.append(-0.5 * b_i)

    margin = max((hi - lo) * 1e-12, _ROOT_MERGE)
    roots: List[float] = []
    for t in candidates:
        if not math.isfinite(t):
            continue
        # Newton polish against the exact (unsquared) residual.
        for _ in range(3):
            f = residual(t)
            df = residual_derivative(t)
            if abs(df) < 1e-12:
                break
            step = f / df
            if not math.isfinite(step):
                break
            t -= step
        if not (lo + margin < t < hi - margin):
            continue
        ref = max(u_base + _value(b1, c1, t), 1.0)
        if abs(residual(t)) > _RESIDUAL_TOL * max(1.0, ref * 1e-6) + _RESIDUAL_TOL:
            continue  # spurious root from squaring
        coalesce = _ROOT_COALESCE * max(1.0, abs(t), hi - lo)
        if all(abs(t - r) > coalesce for r in roots):
            roots.append(t)
    roots.sort()
    return roots


def classify_case(qseg: Segment,
                  u_cp: Tuple[float, float], u_base: float,
                  v_cp: Tuple[float, float], v_base: float) -> int:
    """The paper's Case 1-4 for challenger ``(u)`` vs incumbent ``(v)``.

    Uses Section 3's quantities: ``d = ||p, v|| - ||p', u||`` and ``a`` the
    (signed magnitude of the) distance between the projections of ``u`` and
    ``v`` onto ``q``.  Returns 1 when the challenger takes the whole segment,
    2 for two split points, 3 for one, 4 when the incumbent keeps everything.

    Only meaningful in the paper's canonical configuration (both control
    points strictly off the query line, challenger farther); the query engine
    never calls this — it is provided for analysis and to validate Theorem 1.
    """
    d = v_base - u_base
    duv = math.hypot(u_cp[0] - v_cp[0], u_cp[1] - v_cp[1])
    a = abs(qseg.param_of(u_cp[0], u_cp[1]) - qseg.param_of(v_cp[0], v_cp[1]))
    if d >= duv:
        return 1
    if a < d < duv:
        return 2
    if -a < d <= a:
        return 3
    return 4


def perpendicular_distance(qseg: Segment, px: float, py: float) -> float:
    """Distance from a point to the *line* through the query segment."""
    ln = qseg.length
    ux = (qseg.bx - qseg.ax) / ln
    uy = (qseg.by - qseg.ay) / ln
    wx = px - qseg.ax
    wy = py - qseg.ay
    return abs(ux * wy - uy * wx)
