"""Obstructed spatial joins (the Zhang et al. [31] query family).

The paper's Section 2.3 credits Zhang et al. with obstructed versions of
the classic spatial operations; this module supplies them on our substrate:

* :func:`obstructed_e_distance_join` — all pairs across two point sets
  within obstructed distance ``e``;
* :func:`obstructed_closest_pair` — the cross-set pair with the smallest
  obstructed distance;
* :func:`obstructed_semi_join` — for every point of the outer set, its
  obstructed NN in the inner set.

All three use the same two-level strategy the CONN engine uses: Euclidean
distance is a lower bound of the obstructed distance, so an R*-tree
dual-traversal prunes with plain ``mindist`` and only surviving candidate
pairs pay for an exact obstructed-distance computation (incrementally
retrieved obstacles, Lemma 3's radius).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, List, Tuple

from ..geometry.predicates import EPS
from ..geometry.segment import Segment
from ..index.nearest import IncrementalNearest
from ..index.rstar import RStarTree
from ..obstacles.visgraph import LocalVisibilityGraph
from .ior import ObstacleRetriever
from .stats import QueryStats


class _PairwiseOracle:
    """Shared incremental obstructed-distance evaluator for point pairs.

    One visibility graph anchored at a reference point serves all pair
    evaluations: both endpoints enter as transient nodes, Lemma 3's
    fixpoint retrieves the obstacles the pair needs, and the graph (with
    its obstacle skeleton) is reused by subsequent pairs.  When a workspace
    obstacle cache is supplied, retrieval rounds additionally reuse
    obstacles fetched by earlier queries over the same dataset.
    """

    def __init__(self, obstacle_tree: RStarTree, anchor: Tuple[float, float],
                 stats: QueryStats, cache=None):
        seg = Segment(anchor[0], anchor[1], anchor[0], anchor[1])
        self._vg = LocalVisibilityGraph(seg)
        if cache is not None:
            self._retriever = cache.view(seg, self._vg, stats)
        else:
            self._retriever = _AnchoredRetriever(obstacle_tree, self._vg,
                                                 stats)

    def distance(self, a: Tuple[float, float], b: Tuple[float, float]) -> float:
        node_a = self._vg.add_point(a[0], a[1])
        node_b = self._vg.add_point(b[0], b[1])
        try:
            while True:
                d = self._vg.shortest_distances(node_a, (node_b,))[node_b]
                needed = self._radius_for(a, b, d)
                if needed <= self._retriever.radius + EPS:
                    return d
                if self._retriever.ensure(needed) == 0:
                    return d
        finally:
            self._vg.remove_point(node_b)
            self._vg.remove_point(node_a)

    def _radius_for(self, a, b, d: float) -> float:
        """Retrieval radius around the anchor that covers a path of length d.

        Any point x on a candidate path from ``a`` to ``b`` of length ``d``
        satisfies ``dist(x, anchor) <= max(dist(a, anchor), dist(b, anchor))
        + d`` (walk to the nearer endpoint, then along the path), so an
        obstacle crossing the path lies within that radius of the anchor.
        """
        if math.isinf(d):
            return math.inf
        anchor = (self._vg.qseg.ax, self._vg.qseg.ay)
        da = math.dist(a, anchor)
        db = math.dist(b, anchor)
        return min(da, db) + d

    @property
    def svg_size(self) -> int:
        return self._vg.svg_size


class _AnchoredRetriever(ObstacleRetriever):
    """ObstacleRetriever keyed by distance to a fixed anchor point."""

    def __init__(self, obstacle_tree: RStarTree, vg: LocalVisibilityGraph,
                 stats: QueryStats):
        super().__init__(obstacle_tree, vg.qseg, vg, stats)


def _items(tree: RStarTree) -> List[Tuple[Any, Tuple[float, float]]]:
    return [(payload, rect.center()) for payload, rect in tree.items()]


def _one_shot_workspace(outer_tree: RStarTree, obstacle_tree: RStarTree):
    """A throwaway workspace routing a free join call through the planner."""
    from ..service.workspace import Workspace

    return Workspace(data_tree=outer_tree, obstacle_tree=obstacle_tree)


def obstructed_e_distance_join(tree_a: RStarTree, tree_b: RStarTree,
                               obstacle_tree: RStarTree, e: float,
                               cache=None
                               ) -> Tuple[List[Tuple[Any, Any, float]], QueryStats]:
    """All cross pairs with obstructed distance at most ``e``.

    A thin shim over a one-shot :class:`~repro.service.Workspace` executing
    an :class:`~repro.query.queries.EDistanceJoinQuery`; build the workspace
    yourself to amortize obstacle retrieval across queries.

    Args:
        cache: optional :class:`~repro.service.ObstacleCache` over
            ``obstacle_tree`` (e.g. a workspace's) to reuse obstacles
            retrieved by earlier queries.

    Returns:
        ``(pairs, stats)`` with pairs as ``(payload_a, payload_b, distance)``
        sorted by distance.
    """
    if cache is not None:
        return _e_distance_join_impl(tree_a, tree_b, obstacle_tree, e,
                                     cache=cache)
    from ..query.queries import EDistanceJoinQuery

    res = _one_shot_workspace(tree_a, obstacle_tree).execute(
        EDistanceJoinQuery(tree_a, tree_b, e))
    return res.tuples(), res.stats


def _e_distance_join_impl(tree_a: RStarTree, tree_b: RStarTree,
                          obstacle_tree: RStarTree, e: float, cache=None
                          ) -> Tuple[List[Tuple[Any, Any, float]], QueryStats]:
    """Execution backend of the obstructed e-distance join."""
    if e < 0:
        raise ValueError("e must be non-negative")
    stats = QueryStats()
    items_a = _items(tree_a)
    items_b = _items(tree_b)
    if not items_a or not items_b:
        return [], stats
    # Dual best-first pruning: Euclidean lower bound first.
    candidates: List[Tuple[Tuple[Any, Tuple[float, float]],
                           Tuple[Any, Tuple[float, float]]]] = []
    for pa, xa in items_a:
        for pb, xb in items_b:
            if math.dist(xa, xb) <= e + EPS:
                candidates.append(((pa, xa), (pb, xb)))
    out: List[Tuple[float, Any, Any]] = []
    if candidates:
        anchor = candidates[0][0][1]
        oracle = _PairwiseOracle(obstacle_tree, anchor, stats, cache=cache)
        for (pa, xa), (pb, xb) in candidates:
            stats.npe += 1
            d = oracle.distance(xa, xb)
            if d <= e + EPS:
                out.append((d, pa, pb))
        stats.svg_size = oracle.svg_size
    out.sort(key=lambda t: t[0])
    return [(pa, pb, d) for d, pa, pb in out], stats


def obstructed_closest_pair(tree_a: RStarTree, tree_b: RStarTree,
                            obstacle_tree: RStarTree, cache=None
                            ) -> Tuple[Tuple[Any, Any, float] | None, QueryStats]:
    """The cross-set pair with the smallest obstructed distance.

    Candidate pairs are examined in ascending *Euclidean* distance (a lower
    bound), so the scan stops as soon as the next candidate's Euclidean
    distance exceeds the best obstructed distance found.  A thin shim over a
    one-shot workspace executing a
    :class:`~repro.query.queries.ClosestPairQuery`.
    """
    if cache is not None:
        return _closest_pair_impl(tree_a, tree_b, obstacle_tree, cache=cache)
    from ..query.queries import ClosestPairQuery

    res = _one_shot_workspace(tree_a, obstacle_tree).execute(
        ClosestPairQuery(tree_a, tree_b))
    return res.pair, res.stats


def _closest_pair_impl(tree_a: RStarTree, tree_b: RStarTree,
                       obstacle_tree: RStarTree, cache=None
                       ) -> Tuple[Tuple[Any, Any, float] | None, QueryStats]:
    """Execution backend of the obstructed closest-pair query."""
    stats = QueryStats()
    items_a = _items(tree_a)
    items_b = _items(tree_b)
    if not items_a or not items_b:
        return None, stats
    heap: List[Tuple[float, int, int, int]] = []
    counter = itertools.count()
    for i, (_pa, xa) in enumerate(items_a):
        for j, (_pb, xb) in enumerate(items_b):
            heapq.heappush(heap, (math.dist(xa, xb), next(counter), i, j))
    oracle = _PairwiseOracle(obstacle_tree, items_a[0][1], stats, cache=cache)
    best: Tuple[float, Any, Any] | None = None
    while heap:
        lower, _c, i, j = heapq.heappop(heap)
        if best is not None and lower >= best[0] - EPS:
            break
        stats.npe += 1
        d = oracle.distance(items_a[i][1], items_b[j][1])
        if math.isfinite(d) and (best is None or d < best[0]):
            best = (d, items_a[i][0], items_b[j][0])
    stats.svg_size = oracle.svg_size
    if best is None:
        return None, stats
    return (best[1], best[2], best[0]), stats


def obstructed_semi_join(tree_a: RStarTree, tree_b: RStarTree,
                         obstacle_tree: RStarTree, cache=None
                         ) -> Tuple[List[Tuple[Any, Any, float]], QueryStats]:
    """For each point of ``tree_a``: its obstructed NN in ``tree_b``.

    A thin shim over a one-shot workspace executing a
    :class:`~repro.query.queries.SemiJoinQuery`.

    Returns:
        ``(rows, stats)``, one ``(payload_a, payload_b, distance)`` row per
        outer point (``payload_b`` is ``None`` when unreachable).
    """
    if cache is not None:
        return _semi_join_impl(tree_a, tree_b, obstacle_tree, cache=cache)
    from ..query.queries import SemiJoinQuery

    res = _one_shot_workspace(tree_a, obstacle_tree).execute(
        SemiJoinQuery(tree_a, tree_b))
    return res.tuples(), res.stats


def _semi_join_impl(tree_a: RStarTree, tree_b: RStarTree,
                    obstacle_tree: RStarTree, cache=None
                    ) -> Tuple[List[Tuple[Any, Any, float]], QueryStats]:
    """Execution backend of the obstructed semi-join."""
    stats = QueryStats()
    items_a = _items(tree_a)
    rows: List[Tuple[Any, Any, float]] = []
    if not items_a:
        return rows, stats
    oracle = _PairwiseOracle(obstacle_tree, items_a[0][1], stats, cache=cache)
    for pa, xa in items_a:
        scan = IncrementalNearest(
            tree_b, lambda rect: rect.mindist_point(xa[0], xa[1]))
        best_payload = None
        best_d = math.inf
        while True:
            key = scan.peek_key()
            if math.isinf(key) or key >= best_d - EPS:
                break
            _lb, pb, rect = scan.pop()
            stats.npe += 1
            d = oracle.distance(xa, rect.center())
            if d < best_d:
                best_d = d
                best_payload = pb
        rows.append((pa, best_payload, best_d))
    stats.svg_size = oracle.svg_size
    return rows, stats
