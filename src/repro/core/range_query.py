"""Obstructed range queries (Zhang et al. [31], the query family the paper
extends).

``obstructed_range`` finds every data point whose *obstructed* distance to a
query point is at most ``radius``.  Euclidean distance lower-bounds the
obstructed distance, so a best-first scan of the data R*-tree can stop as
soon as the next candidate's Euclidean mindist exceeds ``radius``; each
surviving candidate's exact obstructed distance is computed on the shared
local visibility graph with Lemma 3's retrieval bound.

Like :mod:`repro.core.onn`, the scan loop (:func:`run_range_scan`) is
parameterized over the candidate feed and obstacle source so the service
layer can run it against a cross-query obstacle cache.
"""

from __future__ import annotations

import math
import time
from typing import Any, List, Sequence, Tuple

from ..geometry.predicates import EPS
from ..index.pagestore import PageTracker
from ..index.rstar import RStarTree
from ..routing.backends import ObstructedGraph
from .ior import ObstacleSource
from .onn import _stable_distance
from .stats import QueryStats


def run_range_scan(source, retriever: ObstacleSource,
                   vg: ObstructedGraph, radius: float,
                   stats: QueryStats,
                   trackers: Sequence[PageTracker]) -> List[Tuple[Any, float]]:
    """Drive an obstructed range scan over pluggable sources.

    Returns:
        ``(payload, obstructed_distance)`` pairs within ``radius``,
        ascending by distance.
    """
    snapshots = [(t, t.local_stats.snapshot()) for t in trackers]
    started = time.perf_counter()
    matches: List[Tuple[float, Any]] = []
    while True:
        key = source.peek_key()
        if math.isinf(key) or key > radius + EPS:
            break
        _d, payload, (cx, cy) = source.pop()
        stats.npe += 1
        node = vg.add_point(cx, cy)
        try:
            odist = _stable_distance(vg, retriever, node, vg.S)
        finally:
            vg.remove_point(node)
        if odist <= radius + EPS:
            matches.append((odist, payload))
    matches.sort()
    stats.cpu_time_s += time.perf_counter() - started
    stats.svg_size = vg.svg_size
    stats.visibility_tests = vg.visibility_tests
    for tracker, snap in snapshots:
        delta = tracker.local_stats.delta(snap)
        stats.io.logical_reads += delta.logical_reads
        stats.io.page_faults += delta.page_faults
    return [(payload, d) for d, payload in matches]


def obstructed_range(data_tree: RStarTree, obstacle_tree: RStarTree,
                     x, y: float | None = None,
                     radius: float | None = None
                     ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
    """All points within obstructed distance ``radius`` of a query point.

    Accepts ``(x, y, radius)``, ``((x, y), radius)``, or
    ``(Point, radius)`` spellings.  A thin shim over a one-shot
    :class:`~repro.service.Workspace` executing a
    :class:`~repro.query.queries.RangeQuery`.

    Returns:
        ``(matches, stats)`` with matches as ``(payload, obstructed_distance)``
        pairs in ascending distance order.
    """
    from ..service.workspace import Workspace

    ws = Workspace(data_tree=data_tree, obstacle_tree=obstacle_tree)
    return ws.range(x, y, radius)
