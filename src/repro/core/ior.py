"""Incremental Obstacle Retrieval — IOR (Algorithm 1) plus coverage validation.

Obstacles are pulled from the obstacle R*-tree in ascending ``mindist`` to
the query segment through a best-first scan that persists across the whole
query, so the obstacle tree is traversed at most once (Section 4.1).  The
retrieval *radius* only ever grows:

1. :func:`ior_fixpoint` implements Algorithm 1 for a data point ``p``: grow
   the radius to ``max(|SP(p, S)|, |SP(p, E)|)`` computed on the current
   local visibility graph, re-running Dijkstra whenever new obstacles change
   the graph, until the paths are stable.  Lemma 3 then guarantees they are
   the true shortest paths, and Theorem 2 + Lemma 4 that every obstacle that
   can affect ``p``'s obstructed distances to ``q`` is in the graph.
2. :meth:`ObstacleRetriever.ensure` is also called by the engine's coverage
   validation (see DESIGN.md "Deviations"): after CPLC, retrieval is extended
   to the maximum claimed distance CPLMAX, which provably covers every
   obstacle any claimed path could cross.
"""

from __future__ import annotations

import math
from typing import List, Protocol

from ..geometry.predicates import EPS
from ..geometry.segment import Segment
from ..index.nearest import IncrementalNearest
from ..index.rstar import RStarTree
from ..obstacles.obstacle import Obstacle
from ..routing.backends import ObstructedGraph
from .stats import QueryStats


class ObstacleSource(Protocol):
    """What the engine needs from an obstacle feed (2T scan or 1T unified heap)."""

    radius: float

    def ensure(self, radius: float) -> int:
        """Grow coverage to ``radius``; return number of obstacles added."""
        ...  # pragma: no cover - protocol


class TreeObstacleFetcher:
    """Stateless fetch backend over an obstacle R*-tree.

    Owns no per-query state: it only knows how to open best-first scans
    keyed by ``mindist`` to a query segment.  Per-query consumers —
    :class:`ObstacleRetriever` here, or the cross-query
    :class:`~repro.service.ObstacleCache` of the service layer — layer their
    own radius/coverage bookkeeping on top.
    """

    def __init__(self, obstacle_tree: RStarTree):
        self.tree = obstacle_tree

    def open_scan(self, qseg: Segment) -> IncrementalNearest:
        """A fresh incremental scan in ascending ``mindist(entry, qseg)``."""
        return IncrementalNearest(
            self.tree,
            lambda rect: rect.mindist_segment(qseg.ax, qseg.ay,
                                              qseg.bx, qseg.by))


class ObstacleRetriever:
    """Best-first obstacle feed from a dedicated obstacle R*-tree (2T mode).

    The per-query view over :class:`TreeObstacleFetcher`: one persistent scan
    whose retrieval radius only ever grows, feeding the query's local
    visibility graph.  The cache-aware sibling that shares retrieved
    obstacles across queries is
    :class:`repro.service.cache.CachedObstacleView`.
    """

    def __init__(self, obstacle_tree: RStarTree, qseg: Segment,
                 vg: ObstructedGraph, stats: QueryStats):
        self._scan = TreeObstacleFetcher(obstacle_tree).open_scan(qseg)
        self._vg = vg
        self._stats = stats
        self.radius = 0.0

    def ensure(self, radius: float) -> int:
        """Retrieve every obstacle with ``mindist(o, q) <= radius``."""
        if radius <= self.radius:
            return 0
        batch: List[Obstacle] = []
        while True:
            key = self._scan.peek_key()
            if math.isinf(key) or key > radius:
                break
            _d, obstacle, _rect = self._scan.pop()
            batch.append(obstacle)
        added = self._vg.add_obstacles(batch)
        self._stats.noe += added
        self.radius = radius
        return added


def ior_fixpoint(vg: ObstructedGraph, retriever: ObstacleSource,
                 point_node: int, stats: QueryStats,
                 bound: float = math.inf) -> None:
    """Algorithm 1: stabilize the shortest paths from ``point_node`` to S and E.

    Each round computes the local shortest-path lengths to both query
    endpoints and, if they exceed the current retrieval radius, pulls in all
    obstacles up to that length — which may invalidate edges and lengthen the
    paths, so the loop repeats until a fixpoint (Lemma 3).

    ``bound`` is the engine's global result bound (the generalized RLMAX):
    a path of length >= ``bound`` can never appear in the result, so the
    traversal is cut off there and coverage is only guaranteed up to
    ``bound``.  Soundness: any claimed path of length L < bound ends on the
    query segment, so every point of it lies within L of ``q`` and every
    obstacle that could invalidate it has ``mindist(o, q) < bound`` — all
    retrieved.  Claims at or above ``bound`` lose (or tie, which keeps the
    incumbent) at every envelope level, so their exactness is irrelevant.
    """
    while True:
        dists = vg.shortest_distances(point_node, (vg.S, vg.E), bound, bound)
        d_prime = max(dists[vg.S], dists[vg.E])
        if d_prime <= retriever.radius + EPS:
            return
        if d_prime > bound:
            # Cut off (or unreachable within the bound): the point cannot
            # beat the incumbent envelope beyond the bound, so covering
            # obstacles up to the bound is enough.  Retrieval only lengthens
            # paths, so the cutoff keeps holding in later rounds.
            if retriever.ensure(bound) == 0:
                return
            continue
        if math.isinf(d_prime):
            # The point (or an endpoint) is currently unreachable: only the
            # complete obstacle set can confirm it.  ``ensure(inf)`` drains
            # the scan once; the next round then terminates.
            if retriever.ensure(math.inf) == 0:
                return
            continue
        if retriever.ensure(d_prime) == 0:
            return
