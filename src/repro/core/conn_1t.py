"""CONN / COkNN over a single unified R*-tree (Section 4.5, "1T").

Data points and obstacles share one index.  A single best-first heap is
traversed in ascending ``mindist(entry, q)``; de-heaped obstacles go straight
into the local visibility graph, de-heaped data points queue for evaluation.
Because points and obstacles that are close to each other tend to share leaf
pages, one traversal does the work the two-tree layout pays for twice — the
effect Figure 13 of the paper measures.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, List, Tuple

from ..geometry.segment import Segment
from ..index.nearest import IncrementalNearest
from ..index.rstar import RStarTree
from ..obstacles.obstacle import Obstacle
from ..routing.backends import ObstructedGraph
from .config import DEFAULT_CONFIG, ConnConfig
from .engine import ConnResult
from .stats import QueryStats


class UnifiedSource:
    """One heap feeding both roles: data source *and* obstacle source.

    Implements the :class:`~repro.core.engine.DataSource` protocol (peek/pop
    of data points) and the :class:`~repro.core.ior.ObstacleSource` protocol
    (``ensure(radius)``), routing every de-heaped obstacle into the
    visibility graph on sight.  Because the underlying scan pops entries in
    ascending key order, after an obstacle at key ``d`` is routed, every
    obstacle with key below ``d`` is already in the graph — so the coverage
    radius advances with the scan front.
    """

    def __init__(self, tree: RStarTree, qseg: Segment,
                 vg: ObstructedGraph, stats: QueryStats):
        self._scan = IncrementalNearest(
            tree,
            lambda rect: rect.mindist_segment(qseg.ax, qseg.ay, qseg.bx, qseg.by))
        self._vg = vg
        self._stats = stats
        self._pending: List[Tuple[float, int, Any, Tuple[float, float]]] = []
        self._seq = itertools.count()
        self.radius = 0.0

    def _route_obstacle(self, obstacle: Obstacle) -> int:
        """Insert a de-heaped obstacle into the visibility graph.

        Hook point for caching layers (the service's workspace overrides it
        to also harvest the obstacle into its cross-query cache).  Returns
        the number of obstacles actually inserted (0 for duplicates).
        """
        return self._vg.add_obstacles([obstacle])

    # ------------------------------------------------------------ data feed
    def peek_key(self) -> float:
        self._advance_to_point()
        scan_key = self._scan.peek_key()
        if self._pending and self._pending[0][0] <= scan_key:
            return self._pending[0][0]
        return scan_key

    def pop(self) -> Tuple[float, Any, Tuple[float, float]]:
        self._advance_to_point()
        d, _seq, payload, xy = heapq.heappop(self._pending)
        return d, payload, xy

    def _advance_to_point(self) -> None:
        """Route scan entries until its head would be a data point.

        Obstacles encountered on the way enter the visibility graph — the
        paper's case (1) of the unified traversal.
        """
        while True:
            key = self._scan.peek_key()
            if math.isinf(key):
                return
            if self._pending and self._pending[0][0] <= key:
                return
            d, payload, rect = self._scan.pop()
            if isinstance(payload, Obstacle):
                self._stats.noe += self._route_obstacle(payload)
                self.radius = max(self.radius, d)
            else:
                cx, cy = rect.center()
                heapq.heappush(self._pending,
                               (d, next(self._seq), payload, (cx, cy)))
                return

    # ------------------------------------------------------- obstacle feed
    def ensure(self, radius: float) -> int:
        """Pull every entry with key <= ``radius``; points queue, obstacles insert."""
        if radius <= self.radius:
            return 0
        added = 0
        while True:
            key = self._scan.peek_key()
            if math.isinf(key) or key > radius:
                break
            d, payload, rect = self._scan.pop()
            if isinstance(payload, Obstacle):
                n = self._route_obstacle(payload)
                added += n
                self._stats.noe += n
            else:
                cx, cy = rect.center()
                heapq.heappush(self._pending,
                               (d, next(self._seq), payload, (cx, cy)))
        self.radius = radius
        return added


def build_unified_tree(points, obstacles, page_size: int = 4096,
                       bulk: bool = True) -> RStarTree:
    """Index data points and obstacles together in one R*-tree.

    Args:
        points: iterable of ``(payload, (x, y))``.
        obstacles: iterable of :class:`~repro.obstacles.obstacle.Obstacle`.
        bulk: STR bulk load (default) vs one-by-one R* insertion.
    """
    from ..geometry.rectangle import Rect

    items = [(payload, Rect.point(x, y)) for payload, (x, y) in points]
    items.extend((o, o.mbr()) for o in obstacles)
    if bulk:
        return RStarTree.bulk_load(items, page_size=page_size)
    tree = RStarTree(page_size=page_size)
    for payload, rect in items:
        tree.insert(payload, rect)
    return tree


def coknn_single_tree(tree: RStarTree, query: Segment, k: int = 1,
                      config: ConnConfig = DEFAULT_CONFIG) -> ConnResult:
    """COkNN over a unified tree built by :func:`build_unified_tree`.

    A thin wrapper over a one-shot :class:`~repro.service.Workspace`
    executing a :class:`~repro.query.queries.CoknnQuery`; build the
    workspace yourself to amortize obstacle retrieval across queries.
    """
    from ..query.queries import CoknnQuery
    from ..service.workspace import Workspace

    return Workspace(unified_tree=tree).execute(
        CoknnQuery(query, k, config=config))


def conn_single_tree(tree: RStarTree, query: Segment,
                     config: ConnConfig = DEFAULT_CONFIG) -> ConnResult:
    """CONN (k = 1) over a unified tree."""
    return coknn_single_tree(tree, query, k=1, config=config)
