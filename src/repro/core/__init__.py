"""Core CONN/COkNN query processing (the paper's contribution)."""

from .config import DEFAULT_CONFIG, ConnConfig
from .conn import coknn, conn
from .conn_1t import (
    UnifiedSource,
    build_unified_tree,
    coknn_single_tree,
    conn_single_tree,
)
from .cplc import compute_cpl
from .distance_function import Piece, PiecewiseDistance
from .engine import ConnResult, KEnvelope, TreeDataSource, evaluate_point, run_query
from .ior import ObstacleRetriever, TreeObstacleFetcher, ior_fixpoint
from .joins import (
    obstructed_closest_pair,
    obstructed_e_distance_join,
    obstructed_semi_join,
)
from .onn import obstructed_distance_indexed, onn
from .range_query import obstructed_range
from .split import classify_case, crossing_params, dist_quadratic, perpendicular_distance
from .stats import QueryStats
from .trajectory import TrajectoryResult, trajectory_coknn, trajectory_conn
from .vknn import vknn

__all__ = [
    "ConnConfig",
    "ConnResult",
    "DEFAULT_CONFIG",
    "KEnvelope",
    "ObstacleRetriever",
    "Piece",
    "PiecewiseDistance",
    "QueryStats",
    "TreeDataSource",
    "TreeObstacleFetcher",
    "UnifiedSource",
    "build_unified_tree",
    "classify_case",
    "coknn",
    "coknn_single_tree",
    "compute_cpl",
    "conn",
    "conn_single_tree",
    "crossing_params",
    "dist_quadratic",
    "evaluate_point",
    "ior_fixpoint",
    "obstructed_closest_pair",
    "obstructed_distance_indexed",
    "obstructed_e_distance_join",
    "obstructed_range",
    "obstructed_semi_join",
    "onn",
    "perpendicular_distance",
    "run_query",
    "TrajectoryResult",
    "trajectory_coknn",
    "trajectory_conn",
    "vknn",
]
