"""Trajectory CONN — the paper's first "future work" direction (Section 6).

A *trajectory* is a polyline of consecutive line segments.  A trajectory
CONN query retrieves the obstructed (k-)nearest neighbors of every point
along the whole polyline.  Each leg is answered by the standard COkNN engine
with its own local visibility graph (keeping each leg's pruning radii
tight), but all legs run through one :class:`~repro.service.Workspace`, so
adjacent legs — whose obstacle footprints overlap around the shared
waypoint — draw already-retrieved obstacles from the workspace cache instead
of re-reading the obstacle tree.  Results are stitched into one answer
addressed by *global* arc length from the trajectory's start.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..geometry.predicates import EPS
from ..index.rstar import RStarTree
from .config import DEFAULT_CONFIG, ConnConfig
from .engine import ConnResult
from .stats import QueryStats


class TrajectoryResult:
    """Answer of a trajectory CONN/COkNN query over a polyline.

    Satisfies the unified result protocol of the declarative API
    (:meth:`tuples`, :attr:`stats`, and a :attr:`query` back-reference
    filled by the executor).
    """

    def __init__(self, waypoints: Sequence[Tuple[float, float]],
                 legs: Sequence[ConnResult], k: int):
        self.waypoints = [(float(x), float(y)) for x, y in waypoints]
        self.legs = list(legs)
        self.k = k
        self.query = None
        """The submitted query description (set by ``Workspace.execute``)."""
        self._offsets: List[float] = [0.0]
        for leg in self.legs:
            self._offsets.append(self._offsets[-1] + leg.qseg.length)
        self.stats = QueryStats()
        for leg in self.legs:
            self.stats.merge(leg.stats)
        self.stats.svg_size = max((leg.stats.svg_size for leg in self.legs),
                                  default=0)

    @property
    def length(self) -> float:
        """Total arc length of the trajectory."""
        return self._offsets[-1]

    def _locate(self, t: float) -> Tuple[ConnResult, float]:
        """Map global arc length to ``(leg, local parameter)``."""
        if not self.legs:
            raise ValueError("empty trajectory result")
        t = min(max(t, 0.0), self.length)
        for i, leg in enumerate(self.legs):
            if t <= self._offsets[i + 1] + EPS:
                return leg, t - self._offsets[i]
        return self.legs[-1], self.legs[-1].qseg.length

    def owner_at(self, t: float) -> Any:
        """Obstructed NN at global arc length ``t``."""
        leg, local = self._locate(t)
        return leg.owner_at(local)

    def distance(self, t: float) -> float:
        leg, local = self._locate(t)
        return leg.distance(local)

    def knn_at(self, t: float) -> List[Tuple[Any, float]]:
        leg, local = self._locate(t)
        return leg.knn_at(local)

    def tuples(self) -> List[Tuple[Any, Tuple[float, float]]]:
        """Result list over the whole polyline in global arc length.

        Adjacent intervals with the same owner merge across leg boundaries,
        so a neighbor that stays nearest through a turn yields one tuple.
        """
        out: List[Tuple[Any, Tuple[float, float]]] = []
        for i, leg in enumerate(self.legs):
            off = self._offsets[i]
            for owner, (lo, hi) in leg.tuples():
                glo, ghi = off + lo, off + hi
                if out and (out[-1][0] is owner or out[-1][0] == owner) and \
                        abs(out[-1][1][1] - glo) <= EPS:
                    out[-1] = (owner, (out[-1][1][0], ghi))
                else:
                    out.append((owner, (glo, ghi)))
        return out

    def split_points(self) -> List[float]:
        """Global arc lengths where the nearest neighbor changes."""
        return [lo for _owner, (lo, _hi) in self.tuples()[1:]]


def trajectory_coknn(data_tree: RStarTree, obstacle_tree: RStarTree,
                     waypoints: Sequence[Tuple[float, float]], k: int = 1,
                     config: ConnConfig = DEFAULT_CONFIG) -> TrajectoryResult:
    """Continuous obstructed k-NN along a polyline trajectory.

    Args:
        waypoints: at least two vertices of the polyline; zero-length legs
            are skipped.
    """
    from ..query.queries import TrajectoryQuery
    from ..service.workspace import Workspace

    ws = Workspace(data_tree=data_tree, obstacle_tree=obstacle_tree)
    return ws.execute(TrajectoryQuery(tuple(waypoints), k, config=config))


def trajectory_conn(data_tree: RStarTree, obstacle_tree: RStarTree,
                    waypoints: Sequence[Tuple[float, float]],
                    config: ConnConfig = DEFAULT_CONFIG) -> TrajectoryResult:
    """Continuous obstructed NN (k = 1) along a polyline trajectory."""
    return trajectory_coknn(data_tree, obstacle_tree, waypoints, k=1,
                            config=config)
