"""Public CONN / COkNN entry points for the two-tree layout (Algorithm 4).

``P`` and ``O`` live in separate R*-trees (the paper's default, "2T").  For
the single-tree variant see :mod:`repro.core.conn_1t`.
"""

from __future__ import annotations

from ..geometry.segment import Segment
from ..index.rstar import RStarTree
from ..obstacles.visgraph import LocalVisibilityGraph
from .config import DEFAULT_CONFIG, ConnConfig
from .engine import ConnResult, TreeDataSource, run_query
from .ior import ObstacleRetriever
from .stats import QueryStats


def coknn(data_tree: RStarTree, obstacle_tree: RStarTree, query: Segment,
          k: int = 1, config: ConnConfig = DEFAULT_CONFIG) -> ConnResult:
    """Continuous obstructed k-nearest-neighbor query.

    Finds, for every point of ``query``, its ``k`` nearest data points under
    the obstructed distance.

    Args:
        data_tree: R*-tree over data points (payload = anything hashable,
            MBR = the point's degenerate rectangle).
        obstacle_tree: R*-tree whose payloads are
            :class:`~repro.obstacles.obstacle.Obstacle` instances.
        query: the query line segment ``q = [S, E]``.
        k: number of neighbors per point of ``q``.
        config: pruning switches (defaults enable everything).

    Returns:
        A :class:`~repro.core.engine.ConnResult`.
    """
    if query.is_degenerate():
        raise ValueError("query segment is degenerate; use onn() for points")
    stats = QueryStats()
    vg = LocalVisibilityGraph(query)
    retriever = ObstacleRetriever(obstacle_tree, query, vg, stats)
    source = TreeDataSource(data_tree, query)
    return run_query(source, retriever, vg, query, k, config,
                     (data_tree.tracker, obstacle_tree.tracker), stats)


def conn(data_tree: RStarTree, obstacle_tree: RStarTree, query: Segment,
         config: ConnConfig = DEFAULT_CONFIG) -> ConnResult:
    """Continuous obstructed nearest-neighbor query (k = 1), Definition 6."""
    return coknn(data_tree, obstacle_tree, query, k=1, config=config)
