"""Public CONN / COkNN entry points for the two-tree layout (Algorithm 4).

``P`` and ``O`` live in separate R*-trees (the paper's default, "2T").  For
the single-tree variant see :mod:`repro.core.conn_1t`.

Both functions are thin wrappers over a one-shot
:class:`~repro.service.Workspace`, so they share one implementation with the
service layer; the cold first query of a workspace and a direct ``conn``
call are the same code path with the same I/O pattern.  Build a
:class:`~repro.service.Workspace` yourself when several queries hit the same
dataset — its obstacle cache amortizes retrieval across them.
"""

from __future__ import annotations

from ..geometry.segment import Segment
from ..index.rstar import RStarTree
from .config import DEFAULT_CONFIG, ConnConfig
from .engine import ConnResult


def coknn(data_tree: RStarTree, obstacle_tree: RStarTree, query: Segment,
          k: int = 1, config: ConnConfig = DEFAULT_CONFIG) -> ConnResult:
    """Continuous obstructed k-nearest-neighbor query.

    Finds, for every point of ``query``, its ``k`` nearest data points under
    the obstructed distance.

    Args:
        data_tree: R*-tree over data points (payload = anything hashable,
            MBR = the point's degenerate rectangle).
        obstacle_tree: R*-tree whose payloads are
            :class:`~repro.obstacles.obstacle.Obstacle` instances.
        query: the query line segment ``q = [S, E]``.
        k: number of neighbors per point of ``q``.
        config: pruning switches (defaults enable everything).

    Returns:
        A :class:`~repro.core.engine.ConnResult`.
    """
    from ..query.queries import CoknnQuery
    from ..service.workspace import Workspace

    ws = Workspace(data_tree=data_tree, obstacle_tree=obstacle_tree)
    return ws.execute(CoknnQuery(query, k, config=config))


def conn(data_tree: RStarTree, obstacle_tree: RStarTree, query: Segment,
         config: ConnConfig = DEFAULT_CONFIG) -> ConnResult:
    """Continuous obstructed nearest-neighbor query (k = 1), Definition 6."""
    from ..query.queries import ConnQuery
    from ..service.workspace import Workspace

    ws = Workspace(data_tree=data_tree, obstacle_tree=obstacle_tree)
    return ws.execute(ConnQuery(query, config=config))
