"""Per-query statistics matching the paper's performance metrics.

Section 5.1 reports: I/O cost (pages accessed, 10 ms charged per fault),
CPU time, query cost (= I/O time + CPU time), visibility-graph size |SVG|,
number of points evaluated (NPE), and number of obstacles evaluated (NOE).
:class:`QueryStats` carries all of them plus internal counters used by the
ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..index.pagestore import IO_MS_PER_FAULT, IOStats
from ..routing.stats import BackendStats

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..shard.stats import ShardStats


@dataclass
class QueryStats:
    """Counters accumulated while answering one CONN/COkNN/ONN query."""

    npe: int = 0
    """Data points evaluated (paper's NPE)."""

    noe: int = 0
    """Obstacles inserted into the local visibility graph (paper's NOE)."""

    svg_size: int = 0
    """Vertices in the local visibility graph at query end (paper's |SVG|)."""

    io: IOStats = field(default_factory=IOStats)
    """Page accesses charged to this query (delta over the query's trees)."""

    cpu_time_s: float = 0.0
    """Wall-clock compute time spent inside the query."""

    nodes_expanded: int = 0
    """Visibility-graph nodes processed by CPLC."""

    split_solves: int = 0
    """Quadratic split-point computations performed."""

    lemma1_prunes: int = 0
    """Envelope merges decided by Lemma 1 without solving."""

    lemma6_prunes: int = 0
    """Candidate intervals dropped by Lemma 6's triangle test."""

    lemma7_cutoffs: int = 0
    """CPLC traversals cut short by Lemma 7."""

    prefilter_skips: int = 0
    """CPLC nodes skipped by the Euclidean lower-bound prefilter."""

    global_bound_cutoffs: int = 0
    """CPLC traversals cut short (and nodes skipped) by the global RLMAX
    bound — the engine's incumbent k-envelope proving a candidate's
    remaining contributions irrelevant."""

    coverage_rounds: int = 0
    """Extra retrieval rounds forced by coverage validation."""

    visibility_tests: int = 0
    """Sight-line tests performed by the visibility graph."""

    cache_hits: int = 0
    """Retrieval rounds served entirely from the workspace obstacle cache."""

    cache_misses: int = 0
    """Retrieval rounds that had to scan the obstacle index."""

    cache_served: int = 0
    """Obstacles delivered to the visibility graph from cache (no index I/O)."""

    obstacle_reads: int = 0
    """Logical page reads charged to the obstacle index by this query.

    Filled by the service layer (``QueryService``); for the single-tree
    layout this is the unified tree's reads, since data and obstacle pages
    are not separable there.
    """

    backend_name: str = ""
    """The obstructed-distance backend that served this query (e.g.
    ``"per-query-vg"`` or ``"shared-vg"``); empty when the query ran on a
    raw graph outside the backend machinery."""

    backend: BackendStats = field(default_factory=BackendStats)
    """This query's share of routing-backend work: graph builds vs
    Dijkstra vs visibility tests (see
    :class:`~repro.routing.stats.BackendStats`)."""

    shard: Optional["ShardStats"] = None
    """Cross-shard routing block (consulted shards, border expansions) when
    this query ran through a :class:`~repro.shard.ShardedWorkspace`; None
    for unsharded execution."""

    @property
    def io_time_ms(self) -> float:
        """Charged I/O time (10 ms per page fault, as in the paper)."""
        return self.io.page_faults * IO_MS_PER_FAULT

    @property
    def cpu_time_ms(self) -> float:
        return self.cpu_time_s * 1000.0

    @property
    def total_time_ms(self) -> float:
        """The paper's *query cost*: I/O time plus CPU time."""
        return self.io_time_ms + self.cpu_time_ms

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one (for averages)."""
        self.npe += other.npe
        self.noe += other.noe
        self.svg_size += other.svg_size
        self.io.logical_reads += other.io.logical_reads
        self.io.page_faults += other.io.page_faults
        self.cpu_time_s += other.cpu_time_s
        self.nodes_expanded += other.nodes_expanded
        self.split_solves += other.split_solves
        self.lemma1_prunes += other.lemma1_prunes
        self.lemma6_prunes += other.lemma6_prunes
        self.lemma7_cutoffs += other.lemma7_cutoffs
        self.prefilter_skips += other.prefilter_skips
        self.global_bound_cutoffs += other.global_bound_cutoffs
        self.coverage_rounds += other.coverage_rounds
        self.visibility_tests += other.visibility_tests
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_served += other.cache_served
        self.obstacle_reads += other.obstacle_reads
        self.backend.merge(other.backend)
        if not self.backend_name:
            self.backend_name = other.backend_name
        if other.shard is not None:
            if self.shard is None:
                from ..shard.stats import ShardStats
                self.shard = ShardStats()
            self.shard.merge(other.shard)
