"""Visible k-nearest-neighbor queries (Nutanong et al., paper Section 2.3).

VkNN returns the ``k`` nearest data points that are *visible* from the query
point — obstacles block sight lines but, unlike the obstructed distance, do
not reroute them: an invisible point is simply excluded, and distances stay
Euclidean.  The paper positions this as the other line of obstacle-aware
query research; it falls out of our substrate in a few lines.

Soundness of the incremental retrieval: an obstacle can only block the
sight line to a candidate at Euclidean distance ``d`` if it intersects that
segment, hence lies within ``d`` of the query point — so retrieving all
obstacles with ``mindist(o, q) <= d`` before testing visibility at radius
``d`` is sufficient.
"""

from __future__ import annotations

import math
import time
from typing import Any, List, Tuple

from ..geometry.predicates import EPS
from ..geometry.segment import Segment
from ..index.nearest import IncrementalNearest
from ..index.rstar import RStarTree
from ..obstacles.visgraph import LocalVisibilityGraph
from .ior import ObstacleRetriever
from .stats import QueryStats


def vknn(data_tree: RStarTree, obstacle_tree: RStarTree,
         x: float, y: float, k: int = 1
         ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
    """The ``k`` nearest data points *visible* from ``(x, y)``.

    Returns:
        ``(neighbors, stats)`` with neighbors as ``(payload, euclidean
        distance)`` in ascending order (fewer than ``k`` when the rest of
        the data set is hidden).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    stats = QueryStats()
    snapshots = [(t, t.local_stats.snapshot())
                 for t in (data_tree.tracker, obstacle_tree.tracker)]
    started = time.perf_counter()
    anchor = Segment(x, y, x, y)
    vg = LocalVisibilityGraph(anchor)
    retriever = ObstacleRetriever(obstacle_tree, anchor, vg, stats)
    scan = IncrementalNearest(data_tree, lambda rect: rect.mindist_point(x, y))
    found: List[Tuple[Any, float]] = []
    while len(found) < k:
        key = scan.peek_key()
        if math.isinf(key):
            break
        d, payload, rect = scan.pop()
        stats.npe += 1
        retriever.ensure(d + EPS)
        cx, cy = rect.center()
        if not vg.obstacles.blocked(x, y, cx, cy):
            found.append((payload, math.hypot(cx - x, cy - y)))
    stats.cpu_time_s += time.perf_counter() - started
    stats.svg_size = vg.svg_size
    for tracker, snap in snapshots:
        delta = tracker.local_stats.delta(snap)
        stats.io.logical_reads += delta.logical_reads
        stats.io.page_faults += delta.page_faults
    return found, stats
