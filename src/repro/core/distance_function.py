"""Piecewise obstructed-distance functions over the query segment.

Everything the CONN algorithms maintain — a point's control point list
(Definition 9), the result list (Definition 6), each level of the COkNN
k-envelope — is the same mathematical object: a partition of ``q`` into
intervals, each carrying a *control point* ``cp`` and a *base* path length,
representing the distance function ``base + dist(cp, q(t))`` on the interval
(``Piece``).  An empty piece (``cp is None``) means "no path known", value
``+inf``.

:meth:`PiecewiseDistance.merge_min` is the single primitive both CPLC's
control-point-list updates and RLU's result-list updates reduce to: the
pointwise minimum of two such functions, with interval boundaries created
exactly at the quadratic split points of Section 3 and with the paper's
Lemma 1 endpoint-dominance rule used to skip solves when one side provably
dominates.  It returns winner *and* loser, which is what lets the COkNN
k-level envelope cascade losers downward (Section 4.5).
"""

from __future__ import annotations

import math
from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..geometry.interval import MERGE_EPS, IntervalSet
from ..geometry.predicates import point_seg_dist
from ..geometry.segment import Segment
from .config import DEFAULT_CONFIG, ConnConfig
from .split import crossing_params, dist_quadratic_batch, perpendicular_distance
from .stats import QueryStats

_TIE_EPS = 1e-9
"""Value difference below which two paths are considered tied."""

_VEC_MIN_PIECES = 8
"""Piece count below which the scalar loops beat numpy dispatch overhead.

Both paths make identical decisions (the vectorized screens defer every
near-tie to the exact scalar math), so the threshold is purely a
performance knob.
"""

_VEC_MIN_SPAN = 16
"""Overlapped-piece count below which one region interval is resolved by
the scalar walk even when the envelope is table-backed.

Lemma 5/6 subtraction fragments challenger regions into many short
intervals, each overlapping a handful of pieces; ~15 numpy dispatches on
a 3-element slice lose badly to a 3-iteration Python loop.  Same
decisions either way (performance knob, like :data:`_VEC_MIN_PIECES`).
"""

_VEC_MIN_CHECK = 32
"""Piece count below which the *check* methods (dominance, window
minimum, endpoint maximum) stay fully scalar.

Unlike :meth:`PiecewiseDistance.values` — whose broadcast grows with the
evaluation-point count and pays off almost immediately — a check touches
each piece once, so the piece table (one O(n) build per envelope) plus
per-call numpy dispatch only amortizes on piece-rich envelopes.  Warm
corridor profiling puts typical CPLC envelopes at 8-15 pieces with
region overlaps under 4 pieces; vectorizing those was a measured net
loss.
"""

_SCREEN_BAND = 1e-12
"""Relative ambiguity band of the vectorized comparison screens.

``np.hypot`` and ``math.hypot`` may disagree in the last ulp (~2e-16
relative), so a vectorized comparison is only trusted when its margin
exceeds this band — four orders of magnitude above the worst hypot
discrepancy — and everything inside the band is re-decided with the
scalar functions.  That is what keeps the numpy piece table bit-faithful
to the scalar ``Piece`` loops it replaces.
"""


class _PieceTable(NamedTuple):
    """Columnar (structure-of-arrays) view of a piece list.

    Built lazily by :meth:`PiecewiseDistance._table` and cached on the
    instance; envelopes are immutable after construction (``merge_min`` /
    ``replace_span`` return fresh objects), so the cache never goes stale.

    Attributes:
        lo, hi: piece parameter ranges (sorted, contiguous partition).
        cpx, cpy: control point coordinates (NaN for unknown pieces).
        base: path length to the control point.
        finite: mask of pieces with a known control point.
        qb, qc: per-piece ``dist_quadratic`` coefficients (NaN when
            unknown), cached for the split solver.
    """

    lo: np.ndarray
    hi: np.ndarray
    cpx: np.ndarray
    cpy: np.ndarray
    base: np.ndarray
    finite: np.ndarray
    qb: np.ndarray
    qc: np.ndarray


class Piece(NamedTuple):
    """One interval of a piecewise distance function.

    A NamedTuple rather than a dataclass: merges allocate millions of these
    on large workloads and tuple construction is several times cheaper.

    Attributes:
        lo, hi: arc-length parameter range on the query segment.
        cp: control point coordinates, or ``None`` for "unknown/unreachable".
        base: obstructed path length from the owner to ``cp``.
        owner: the data point (payload) this distance function belongs to;
            ``None`` for the initial empty function.
    """

    lo: float
    hi: float
    cp: Optional[Tuple[float, float]]
    base: float
    owner: Any

    def value_at(self, qseg: Segment, t: float) -> float:
        if self.cp is None:
            return math.inf
        return _piece_value(qseg, qseg.length, self.cp, self.base, t)

    def max_value(self, qseg: Segment) -> float:
        """Maximum over the piece = max of the endpoint values (convexity)."""
        if self.cp is None:
            return math.inf
        ln = qseg.length
        return max(_piece_value(qseg, ln, self.cp, self.base, self.lo),
                   _piece_value(qseg, ln, self.cp, self.base, self.hi))

    def clipped(self, lo: float, hi: float) -> "Piece":
        return Piece(lo, hi, self.cp, self.base, self.owner)


def _q_point(qseg: Segment, ln: float, t: float) -> Tuple[float, float]:
    """``q(t)`` replicating ``Segment.point_at`` bit-exactly.

    The float operations mirror :meth:`Segment.point_at` operation for
    operation (clamp, divide, lerp) so coordinates are identical to the
    historic ``qseg.point_at(t)`` path while skipping the Point allocation
    and the per-call ``length`` recomputation (callers hoist ``ln`` once).
    """
    if ln == 0.0:
        return qseg.ax, qseg.ay
    f = min(max(t, 0.0), ln) / ln
    return (qseg.ax + f * (qseg.bx - qseg.ax),
            qseg.ay + f * (qseg.by - qseg.ay))


def _piece_value(qseg: Segment, ln: float, cp: Tuple[float, float],
                 base: float, t: float) -> float:
    """``base + dist(cp, q(t))`` with a pre-hoisted segment length."""
    x, y = _q_point(qseg, ln, t)
    return base + math.hypot(x - cp[0], y - cp[1])


def _q_points_arr(qseg: Segment, ln: float, a: np.ndarray, b: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`_q_point` at two parameter arrays (``ln > 0``).

    Same clamp / divide / lerp operation sequence as the scalar helper, so
    coordinates are elementwise bit-identical to per-parameter calls.
    """
    dx = qseg.bx - qseg.ax
    dy = qseg.by - qseg.ay
    fa = np.minimum(np.maximum(a, 0.0), ln) / ln
    fb = np.minimum(np.maximum(b, 0.0), ln) / ln
    return (qseg.ax + fa * dx, qseg.ay + fa * dy,
            qseg.ax + fb * dx, qseg.ay + fb * dy)


def _point_seg_dist_arr(px, py, ax, ay, bx, by) -> np.ndarray:
    """Vectorized :func:`~repro.geometry.predicates.point_seg_dist`.

    Identical IEEE operations except the final ``np.hypot`` (which may
    differ from ``math.hypot`` in the last ulp) — callers comparing its
    output against scalar values must screen with :data:`_SCREEN_BAND`.
    """
    abx = bx - ax
    aby = by - ay
    denom = abx * abx + aby * aby
    safe = np.where(denom > 0.0, denom, 1.0)
    t = ((px - ax) * abx + (py - ay) * aby) / safe
    t = np.minimum(np.maximum(t, 0.0), 1.0)
    cx = ax + t * abx
    cy = ay + t * aby
    return np.where(denom > 0.0, np.hypot(px - cx, py - cy),
                    np.hypot(px - ax, py - ay))


def _clip(p: Piece, lo: float, hi: float) -> Piece:
    """``p.clipped(lo, hi)`` without allocating when the range is unchanged."""
    if lo == p.lo and hi == p.hi:
        return p
    return Piece(lo, hi, p.cp, p.base, p.owner)


def _same_function(a: Piece, b: Piece) -> bool:
    """Do two pieces describe the same distance function (ignoring range)?"""
    if a.owner is not b.owner and a.owner != b.owner:
        return False
    if a.cp is None or b.cp is None:
        return a.cp is None and b.cp is None
    return (abs(a.cp[0] - b.cp[0]) <= _TIE_EPS and
            abs(a.cp[1] - b.cp[1]) <= _TIE_EPS and
            abs(a.base - b.base) <= _TIE_EPS)


def _append(pieces: List[Piece], piece: Piece) -> None:
    """Append with coalescing of adjacent pieces of the same function."""
    if piece.hi - piece.lo <= MERGE_EPS:
        return
    if pieces:
        last = pieces[-1]
        # Identity pre-check: clips share their parent's cp/owner objects,
        # so most coalesces are decided without the tolerance comparisons.
        if piece.lo <= last.hi + MERGE_EPS and (
                (piece.cp is last.cp and piece.base == last.base and
                 (piece.owner is last.owner or piece.owner == last.owner))
                or _same_function(last, piece)):
            pieces[-1] = Piece(last.lo, piece.hi, piece.cp, piece.base,
                               piece.owner)
            return
    pieces.append(piece)


class PiecewiseDistance:
    """A piecewise distance function partitioning ``[0, length(q)]``."""

    __slots__ = ("qseg", "pieces", "_tab")

    def __init__(self, qseg: Segment, pieces: Sequence[Piece]):
        self.qseg = qseg
        self.pieces: List[Piece] = list(pieces)
        self._tab: Optional[_PieceTable] = None

    def _table(self) -> _PieceTable:
        """The cached columnar view of :attr:`pieces` (built on demand).

        Merges never mutate an envelope in place — ``merge_min`` and
        ``replace_span`` construct new :class:`PiecewiseDistance` objects,
        whose cache starts empty — but the length check below also guards
        against any future in-place edit of the piece list.
        """
        tab = self._tab
        pieces = self.pieces
        n = len(pieces)
        if tab is None or tab.lo.shape[0] != n:
            lo = np.empty(n)
            hi = np.empty(n)
            cpx = np.empty(n)
            cpy = np.empty(n)
            base = np.empty(n)
            finite = np.empty(n, dtype=bool)
            for i, p in enumerate(pieces):
                lo[i] = p.lo
                hi[i] = p.hi
                base[i] = p.base
                c = p.cp
                if c is None:
                    finite[i] = False
                    cpx[i] = cpy[i] = np.nan
                else:
                    finite[i] = True
                    cpx[i] = c[0]
                    cpy[i] = c[1]
            qb, qc = dist_quadratic_batch(self.qseg, cpx, cpy)
            tab = _PieceTable(lo, hi, cpx, cpy, base, finite, qb, qc)
            self._tab = tab
        return tab

    # ------------------------------------------------------------ factories
    @classmethod
    def unknown(cls, qseg: Segment, owner: Any = None) -> "PiecewiseDistance":
        """The initial "no answer yet" function: one empty piece over all of q."""
        return cls(qseg, [Piece(0.0, qseg.length, None, math.inf, owner)])

    @classmethod
    def from_region(cls, qseg: Segment, region: IntervalSet,
                    cp: Tuple[float, float], base: float,
                    owner: Any) -> "PiecewiseDistance":
        """``base + dist(cp, .)`` over ``region``, unknown elsewhere."""
        pieces: List[Piece] = []
        cursor = 0.0
        ln = qseg.length
        for lo, hi in region:
            lo = max(lo, 0.0)
            hi = min(hi, ln)
            if lo - cursor > MERGE_EPS:
                _append(pieces, Piece(cursor, lo, None, math.inf, owner))
            _append(pieces, Piece(max(cursor, lo), hi, cp, base, owner))
            cursor = max(cursor, hi)
        if ln - cursor > MERGE_EPS:
            _append(pieces, Piece(cursor, ln, None, math.inf, owner))
        if not pieces:
            return cls.unknown(qseg, owner)
        return cls(qseg, pieces)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"[{p.lo:.6g},{p.hi:.6g}]@{p.cp}+{p.base:.6g}" for p in self.pieces)
        return f"PiecewiseDistance({inner})"

    # ------------------------------------------------------------ inspection
    def piece_at(self, t: float) -> Piece:
        for p in self.pieces:
            if p.lo - MERGE_EPS <= t <= p.hi + MERGE_EPS:
                return p
        raise ValueError(f"parameter {t} outside [0, {self.qseg.length}]")

    def value(self, t: float) -> float:
        """Function value at ``t``; on an exact piece boundary, the minimum
        of the adjoining pieces (matching the vectorized :meth:`values`)."""
        best = math.inf
        for p in self.pieces:
            if p.lo - MERGE_EPS <= t <= p.hi + MERGE_EPS:
                v = p.value_at(self.qseg, t)
                if v < best:
                    best = v
            elif p.lo > t + MERGE_EPS:
                break
        if best == math.inf and not self.pieces:
            raise ValueError(f"parameter {t} outside [0, {self.qseg.length}]")
        return best

    def owner_at(self, t: float) -> Any:
        return self.piece_at(t).owner

    def values(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized evaluation at sorted parameters ``ts``."""
        ts = np.asarray(ts, dtype=np.float64)
        out = np.full(ts.shape, np.inf)
        ln = self.qseg.length
        ux = (self.qseg.bx - self.qseg.ax) / ln
        uy = (self.qseg.by - self.qseg.ay) / ln
        pieces = self.pieces
        n = len(pieces)
        if (n >= _VEC_MIN_PIECES and ts.ndim == 1 and
                n * ts.size <= 2_000_000):
            # One pieces x ts broadcast via the piece table.  Bit-identical
            # to the loop below: the per-element arithmetic is the same
            # sequence of IEEE operations, and a sequential minimum equals
            # a columnwise one.
            tab = self._table()
            qx = self.qseg.ax + ts * ux
            qy = self.qseg.ay + ts * uy
            mask = ((ts >= tab.lo[:, None] - MERGE_EPS) &
                    (ts <= tab.hi[:, None] + MERGE_EPS) &
                    tab.finite[:, None])
            vals = tab.base[:, None] + np.hypot(qx - tab.cpx[:, None],
                                                qy - tab.cpy[:, None])
            return np.where(mask, vals, np.inf).min(axis=0)
        for p in pieces:
            mask = (ts >= p.lo - MERGE_EPS) & (ts <= p.hi + MERGE_EPS)
            if p.cp is None or not mask.any():
                continue
            qx = self.qseg.ax + ts[mask] * ux
            qy = self.qseg.ay + ts[mask] * uy
            vals = p.base + np.hypot(qx - p.cp[0], qy - p.cp[1])
            out[mask] = np.minimum(out[mask], vals)
        return out

    def max_endpoint_value(self) -> float:
        """RLMAX / CPLMAX: max over pieces of their endpoint values.

        Infinite while any part of ``q`` has no known path (the paper's
        ``p_i = emptyset  =>  RLMAX = inf`` convention).
        """
        pieces = self.pieces
        if len(pieces) < _VEC_MIN_CHECK or self.qseg.length == 0.0:
            return self._max_endpoint_scalar()
        tab = self._table()
        if not tab.finite.all():
            return math.inf
        qseg = self.qseg
        ln = qseg.length
        xa, ya, xb, yb = _q_points_arr(qseg, ln, tab.lo, tab.hi)
        per = np.maximum(tab.base + np.hypot(xa - tab.cpx, ya - tab.cpy),
                         tab.base + np.hypot(xb - tab.cpx, yb - tab.cpy))
        top = float(per.max())
        # Any piece whose screened value sits within the hypot-error band
        # of the screened maximum could be the true argmax; re-evaluate
        # those with the scalar math so the result is bit-identical to the
        # scalar loop.
        band = _SCREEN_BAND * (abs(top) + 1.0)
        worst = 0.0
        for k in np.nonzero(per >= top - band)[0]:
            p = pieces[int(k)]
            v = max(_piece_value(qseg, ln, p.cp, p.base, p.lo),
                    _piece_value(qseg, ln, p.cp, p.base, p.hi))
            if v > worst:
                worst = v
        return worst

    def _max_endpoint_scalar(self) -> float:
        """The scalar reference loop behind :meth:`max_endpoint_value`."""
        worst = 0.0
        qseg = self.qseg
        ln = qseg.length
        for p in self.pieces:
            if p.cp is None:
                return math.inf
            v = max(_piece_value(qseg, ln, p.cp, p.base, p.lo),
                    _piece_value(qseg, ln, p.cp, p.base, p.hi))
            if v > worst:
                worst = v
        return worst

    def min_over(self, lo: float, hi: float) -> float:
        """Exact minimum of the envelope over the window ``[lo, hi]``.

        Per finite piece the minimum of ``base + dist(cp, q(t))`` over the
        overlapped sub-interval is ``base`` plus the point-to-segment
        distance from ``cp`` to the overlapped sub-segment of ``q``
        (convexity); unknown pieces contribute ``+inf``.  The window is
        clipped to ``[0, length]``; a window that misses every finite
        piece — or is empty after clipping — yields ``inf``.  Pieces are
        counted as overlapping when they share more than a single point
        with the window, except that a degenerate window ``lo == hi``
        evaluates the pieces containing it.
        """
        ln = self.qseg.length
        lo = max(lo, 0.0)
        hi = min(hi, ln)
        if hi < lo:
            return math.inf
        if hi == lo:
            return self.value(lo)
        pieces = self.pieces
        if len(pieces) < _VEC_MIN_CHECK or ln == 0.0:
            return self._min_over_scalar(lo, hi)
        tab = self._table()
        qseg = self.qseg
        i0 = int(tab.hi.searchsorted(lo, side="right"))
        j1 = int(tab.lo.searchsorted(hi, side="left"))
        if j1 <= i0:
            return math.inf
        if j1 - i0 < _VEC_MIN_SPAN:
            best = math.inf
            for k in range(i0, j1):
                p = pieces[k]
                if p.cp is None or p.hi <= lo or p.lo >= hi:
                    continue
                v = self._piece_min_over(p, lo, hi)
                if v < best:
                    best = v
            return best
        fin = tab.finite[i0:j1]
        if not fin.any():
            return math.inf
        a = np.maximum(tab.lo[i0:j1], lo)
        b = np.minimum(tab.hi[i0:j1], hi)
        xa, ya, xb, yb = _q_points_arr(qseg, ln, a, b)
        lb = tab.base[i0:j1] + _point_seg_dist_arr(
            tab.cpx[i0:j1], tab.cpy[i0:j1], xa, ya, xb, yb)
        lb = np.where(fin, lb, np.inf)
        best_np = float(lb.min())
        if best_np == math.inf:
            return math.inf
        # Screen + exact confirm (see _SCREEN_BAND): every candidate within
        # the hypot-error band of the screened minimum is re-evaluated with
        # the scalar math, so the result matches _min_over_scalar exactly.
        band = _SCREEN_BAND * (abs(best_np) + 1.0)
        best = math.inf
        for k in np.nonzero(lb <= best_np + band)[0]:
            p = pieces[i0 + int(k)]
            v = self._piece_min_over(p, lo, hi)
            if v < best:
                best = v
        return best

    def _min_over_scalar(self, lo: float, hi: float) -> float:
        """The scalar reference loop behind :meth:`min_over`."""
        best = math.inf
        for p in self.pieces:
            if p.cp is None or p.hi <= lo or p.lo >= hi:
                continue
            v = self._piece_min_over(p, lo, hi)
            if v < best:
                best = v
        return best

    def _piece_min_over(self, p: Piece, lo: float, hi: float) -> float:
        """Scalar minimum of one finite piece over the clipped window."""
        qseg = self.qseg
        ln = qseg.length
        a = p.lo if p.lo > lo else lo
        b = p.hi if p.hi < hi else hi
        x0, y0 = _q_point(qseg, ln, a)
        x1, y1 = _q_point(qseg, ln, b)
        return p.base + point_seg_dist(p.cp[0], p.cp[1], x0, y0, x1, y1)

    def dominates_challenger(self, region, cp: Tuple[float, float],
                             base: float) -> bool:
        """Would merging ``base + dist(cp, .)`` over ``region`` be a no-op?

        Exact piecewise test used by CPLC to skip provably-losing merges:
        for each of this envelope's pieces overlapping ``region``, the
        challenger's lower bound (``base`` plus the Euclidean distance from
        ``cp`` to the overlapped sub-segment of ``q``) is compared against
        the piece's maximum over the overlap (at an overlap endpoint, by
        convexity).  When the bound never goes below the incumbent, ties
        keep the incumbent and :meth:`merge_min` would return ``changed ==
        False`` with an identical winner — so the caller can skip it.
        Returns False conservatively whenever any overlap is inconclusive.

        Above :data:`_VEC_MIN_CHECK` pieces the check runs on the numpy
        piece table, evaluating every overlapped piece of a region interval
        in one shot and deferring only near-ties (within
        :data:`_SCREEN_BAND`) to the scalar math — decisions are identical
        to the scalar loop on every input.
        """
        if len(self.pieces) < _VEC_MIN_CHECK or self.qseg.length == 0.0:
            return self._dominates_scalar(region, cp, base)
        return self._dominates_vec(region, cp, base)

    def _dominates_scalar(self, region, cp: Tuple[float, float],
                          base: float) -> bool:
        """The scalar reference loop behind :meth:`dominates_challenger`.

        :func:`_q_point` / :func:`_piece_value` are inlined here (same
        clamp / divide / lerp / hypot operation sequence, so values are
        bit-identical): this loop runs ~85k times per warm corridor and
        the helper-call overhead alone profiled at ~8% of the arm.  The
        challenger bound and the incumbent endpoint values share one
        ``q(t)`` evaluation per endpoint instead of recomputing it.
        """
        qseg = self.qseg
        ln = qseg.length
        pieces = self.pieces
        n = len(pieces)
        cx, cy = cp
        ax = qseg.ax
        ay = qseg.ay
        dx = qseg.bx - ax
        dy = qseg.by - ay
        hyp = math.hypot
        i = 0
        for rlo, rhi in region:
            rlo = max(rlo, 0.0)
            rhi = min(rhi, ln)
            if rhi < rlo:
                continue
            while i < n and pieces[i].hi <= rlo:
                i += 1
            j = i
            while j < n and pieces[j].lo < rhi:
                p = pieces[j]
                pcp = p.cp
                if pcp is None:
                    return False
                a = p.lo if p.lo > rlo else rlo
                b = p.hi if p.hi < rhi else rhi
                if b >= a:
                    if ln == 0.0:
                        x0 = x1 = ax
                        y0 = y1 = ay
                    else:
                        f = min(max(a, 0.0), ln) / ln
                        x0 = ax + f * dx
                        y0 = ay + f * dy
                        f = min(max(b, 0.0), ln) / ln
                        x1 = ax + f * dx
                        y1 = ay + f * dy
                    lb = base + point_seg_dist(cx, cy, x0, y0, x1, y1)
                    pb = p.base
                    px, py = pcp
                    v0 = pb + hyp(x0 - px, y0 - py)
                    v1 = pb + hyp(x1 - px, y1 - py)
                    inc = v0 if v0 >= v1 else v1
                    if lb < inc:
                        return False
                j += 1
        return True

    def _dominates_vec(self, region, cp: Tuple[float, float],
                       base: float) -> bool:
        """Piece-table evaluation of :meth:`dominates_challenger`.

        Per region interval the overlapped piece range is located with two
        ``searchsorted`` calls (the partition is sorted, so the range is
        exactly the pieces the scalar loop would walk), evaluated in one
        vectorized pass, and compared under the :data:`_SCREEN_BAND`
        screen; ambiguous overlaps fall back to the scalar per-piece math.
        """
        qseg = self.qseg
        ln = qseg.length
        tab = self._table()
        pieces = self.pieces
        cx, cy = cp
        for rlo, rhi in region:
            rlo = max(rlo, 0.0)
            rhi = min(rhi, ln)
            if rhi < rlo:
                continue
            i0 = int(tab.hi.searchsorted(rlo, side="right"))
            j1 = int(tab.lo.searchsorted(rhi, side="left"))
            if j1 <= i0:
                continue
            if j1 - i0 < _VEC_MIN_SPAN:
                # Narrow overlap: the scalar walk beats numpy dispatch.
                for k in range(i0, j1):
                    p = pieces[k]
                    if p.cp is None:
                        return False
                    a_s = p.lo if p.lo > rlo else rlo
                    b_s = p.hi if p.hi < rhi else rhi
                    if b_s >= a_s:
                        x0, y0 = _q_point(qseg, ln, a_s)
                        x1, y1 = _q_point(qseg, ln, b_s)
                        lb_s = base + point_seg_dist(cx, cy, x0, y0, x1, y1)
                        inc_s = max(
                            _piece_value(qseg, ln, p.cp, p.base, a_s),
                            _piece_value(qseg, ln, p.cp, p.base, b_s))
                        if lb_s < inc_s:
                            return False
                continue
            if not tab.finite[i0:j1].all():
                return False
            a = np.maximum(tab.lo[i0:j1], rlo)
            b = np.minimum(tab.hi[i0:j1], rhi)
            xa, ya, xb, yb = _q_points_arr(qseg, ln, a, b)
            cpx = tab.cpx[i0:j1]
            cpy = tab.cpy[i0:j1]
            pbase = tab.base[i0:j1]
            inc = np.maximum(pbase + np.hypot(xa - cpx, ya - cpy),
                             pbase + np.hypot(xb - cpx, yb - cpy))
            lb = base + _point_seg_dist_arr(cx, cy, xa, ya, xb, yb)
            diff = lb - inc
            band = _SCREEN_BAND * (np.abs(lb) + np.abs(inc))
            if bool((diff < -band).any()):
                return False
            ambiguous = ~(diff > band)
            if bool(ambiguous.any()):
                for k in np.nonzero(ambiguous)[0]:
                    p = pieces[i0 + int(k)]
                    a_s = p.lo if p.lo > rlo else rlo
                    b_s = p.hi if p.hi < rhi else rhi
                    x0, y0 = _q_point(qseg, ln, a_s)
                    x1, y1 = _q_point(qseg, ln, b_s)
                    lb_s = base + point_seg_dist(cx, cy, x0, y0, x1, y1)
                    inc_s = max(_piece_value(qseg, ln, p.cp, p.base, a_s),
                                _piece_value(qseg, ln, p.cp, p.base, b_s))
                    if lb_s < inc_s:
                        return False
        return True

    def all_unknown(self) -> bool:
        return all(p.cp is None for p in self.pieces)

    def covered(self) -> bool:
        return all(p.cp is not None for p in self.pieces)

    def boundaries(self) -> List[float]:
        out = [self.pieces[0].lo] if self.pieces else []
        out.extend(p.hi for p in self.pieces)
        return out

    def split_points(self) -> List[float]:
        """Interior boundaries where the *owner* changes (paper's split points)."""
        out: List[float] = []
        for a, b in zip(self.pieces, self.pieces[1:]):
            if a.owner is not b.owner and a.owner != b.owner:
                out.append(a.hi)
        return out

    def owner_tuples(self) -> List[Tuple[Any, Tuple[float, float]]]:
        """The user-facing result list: ``(owner, (lo, hi))`` merged by owner."""
        out: List[Tuple[Any, Tuple[float, float]]] = []
        for p in self.pieces:
            key = p.owner if p.cp is not None else None
            if out and (out[-1][0] is key or out[-1][0] == key):
                out[-1] = (key, (out[-1][1][0], p.hi))
            else:
                out.append((key, (p.lo, p.hi)))
        return out

    def replace_span(self, lo: float, hi: float,
                     other: "PiecewiseDistance") -> "PiecewiseDistance":
        """Splice ``other`` over the parameter span ``[lo, hi]``.

        ``other`` must be a piecewise distance over the collinear
        sub-segment of ``self.qseg`` running from ``point_at(lo)`` to
        ``point_at(hi)`` — its pieces are parameterized from 0 and are
        shifted by ``lo`` into this function's parameterization.  Because
        control points live in world coordinates and the sub-segment shares
        the parent's direction, the shifted pieces evaluate identically.

        This is the primitive behind the continuous-monitor layer's local
        repair: re-run the engine on the affected span only, splice the
        fresh answer over the old one, keep everything else untouched.
        """
        ln = self.qseg.length
        lo = max(0.0, min(lo, ln))
        hi = max(lo, min(hi, ln))
        if abs((hi - lo) - other.qseg.length) > 1e-6:
            raise ValueError(
                f"replacement spans {other.qseg.length:g} but the span is "
                f"{hi - lo:g} long")
        pieces: List[Piece] = []
        for p in self.pieces:
            if p.hi <= lo + MERGE_EPS:
                _append(pieces, p)
            elif p.lo < lo - MERGE_EPS:
                _append(pieces, p.clipped(p.lo, lo))
        mid = [Piece(lo + p.lo, lo + p.hi, p.cp, p.base, p.owner)
               for p in other.pieces]
        if mid:
            # Pin the outer boundaries exactly to the span: the sub-segment's
            # length may drift from ``hi - lo`` by float rounding, and a gap
            # wider than the merge tolerance would break the partition.
            mid[0] = Piece(lo, mid[0].hi, mid[0].cp, mid[0].base,
                           mid[0].owner)
            mid[-1] = Piece(mid[-1].lo, hi, mid[-1].cp, mid[-1].base,
                            mid[-1].owner)
        for p in mid:
            _append(pieces, p)
        for p in self.pieces:
            if p.lo >= hi - MERGE_EPS:
                _append(pieces, p.clipped(max(p.lo, hi), p.hi))
            elif p.hi > hi + MERGE_EPS:
                _append(pieces, p.clipped(hi, p.hi))
        return PiecewiseDistance(self.qseg, pieces)

    def assert_partition(self) -> None:
        """Test hook: pieces must exactly partition ``[0, length]`` in order."""
        assert self.pieces, "no pieces"
        assert abs(self.pieces[0].lo) <= 1e-6, f"starts at {self.pieces[0].lo}"
        assert abs(self.pieces[-1].hi - self.qseg.length) <= 1e-6
        for a, b in zip(self.pieces, self.pieces[1:]):
            assert abs(a.hi - b.lo) <= 1e-6, f"gap {a.hi} -> {b.lo}"
            assert a.hi - a.lo > 0, "empty piece"

    # ----------------------------------------------------------------- merge
    def merge_min(self, other: "PiecewiseDistance",
                  cfg: ConnConfig = DEFAULT_CONFIG,
                  stats: QueryStats | None = None
                  ) -> Tuple["PiecewiseDistance", "PiecewiseDistance", bool]:
        """Pointwise minimum against a challenger function.

        Returns:
            ``(winner, loser, changed)`` — the minimum envelope, the
            pointwise-maximum remainder (for k-level cascading), and whether
            the challenger won anywhere.  Ties keep the incumbent.
        """
        qseg = self.qseg
        ln = qseg.length
        stats = stats if stats is not None else QueryStats()
        win: List[Piece] = []
        lose: List[Piece] = []
        changed = False
        ia = ib = 0
        A = self.pieces
        B = other.pieces
        # Reuse the piece table's cached dist_quadratic coefficients for
        # incumbent pieces when a preceding dominance check already built it
        # (bit-identical to recomputing; the table is never built here —
        # a one-shot merge would not amortize it).
        tab = self._tab if (self._tab is not None and
                            self._tab.lo.shape[0] == len(A)) else None
        cursor = 0.0
        while ia < len(A) and ib < len(B):
            pa = A[ia]
            pb = B[ib]
            nxt = min(pa.hi, pb.hi)
            if nxt - cursor > MERGE_EPS:
                # Unknown sides short-circuit here: challengers are typically
                # finite on a few intervals only, and copying the incumbent
                # over the unknown spans is the merge's bulk.
                if pb.cp is None:
                    _append(win, _clip(pa, cursor, nxt))
                    _append(lose, _clip(pb, cursor, nxt))
                elif pa.cp is None:
                    _append(win, _clip(pb, cursor, nxt))
                    _append(lose, _clip(pa, cursor, nxt))
                    changed = True
                else:
                    a_quad = ((tab.qb[ia], tab.qc[ia])
                              if tab is not None else None)
                    challenger_won = self._resolve(pa, pb, cursor, nxt, ln,
                                                   win, lose, cfg, stats,
                                                   a_quad)
                    changed = changed or challenger_won
            cursor = nxt
            if pa.hi <= nxt + MERGE_EPS:
                ia += 1
            if pb.hi <= nxt + MERGE_EPS:
                ib += 1
        return (PiecewiseDistance(qseg, win), PiecewiseDistance(qseg, lose),
                changed)

    def _resolve(self, pa: Piece, pb: Piece, lo: float, hi: float, ln: float,
                 win: List[Piece], lose: List[Piece],
                 cfg: ConnConfig, stats: QueryStats,
                 a_quad: Optional[Tuple[float, float]] = None) -> bool:
        """Resolve one overlap interval; returns True when challenger won any part."""
        qseg = self.qseg
        a_cp = pa.cp
        b_cp = pb.cp
        if b_cp is None:
            _append(win, _clip(pa, lo, hi))
            _append(lose, _clip(pb, lo, hi))
            return False
        if a_cp is None:
            _append(win, _clip(pb, lo, hi))
            _append(lose, _clip(pa, lo, hi))
            return True
        # Identical control points: the smaller base wins outright.
        if (abs(a_cp[0] - b_cp[0]) <= _TIE_EPS and
                abs(a_cp[1] - b_cp[1]) <= _TIE_EPS):
            if pb.base < pa.base - _TIE_EPS:
                _append(win, _clip(pb, lo, hi))
                _append(lose, _clip(pa, lo, hi))
                return True
            _append(win, _clip(pa, lo, hi))
            _append(lose, _clip(pb, lo, hi))
            return False

        a_base = pa.base
        b_base = pb.base
        xlo, ylo = _q_point(qseg, ln, lo)
        xhi, yhi = _q_point(qseg, ln, hi)
        va_lo = a_base + math.hypot(xlo - a_cp[0], ylo - a_cp[1])
        va_hi = a_base + math.hypot(xhi - a_cp[0], yhi - a_cp[1])
        vb_lo = b_base + math.hypot(xlo - b_cp[0], ylo - b_cp[1])
        vb_hi = b_base + math.hypot(xhi - b_cp[0], yhi - b_cp[1])
        if cfg.use_lemma1:
            # Lemma 1: endpoint dominance plus the farther-control-point
            # condition proves dominance over the whole interval.
            h_a = perpendicular_distance(qseg, a_cp[0], a_cp[1])
            h_b = perpendicular_distance(qseg, b_cp[0], b_cp[1])
            if va_lo <= vb_lo + _TIE_EPS and va_hi <= vb_hi + _TIE_EPS and \
                    h_b >= h_a:
                stats.lemma1_prunes += 1
                _append(win, _clip(pa, lo, hi))
                _append(lose, _clip(pb, lo, hi))
                return False
            if vb_lo < va_lo - _TIE_EPS and vb_hi < va_hi - _TIE_EPS and \
                    h_a >= h_b:
                stats.lemma1_prunes += 1
                _append(win, _clip(pb, lo, hi))
                _append(lose, _clip(pa, lo, hi))
                return True

        stats.split_solves += 1
        roots = crossing_params(qseg, b_cp, b_base, a_cp, a_base, lo, hi,
                                v_quad=a_quad)
        edges = [lo, *roots, hi]
        challenger_won = False
        for x0, x1 in zip(edges, edges[1:]):
            if x1 - x0 <= MERGE_EPS:
                continue
            mid = 0.5 * (x0 + x1)
            xm, ym = _q_point(qseg, ln, mid)
            if b_base + math.hypot(xm - b_cp[0], ym - b_cp[1]) < \
                    a_base + math.hypot(xm - a_cp[0], ym - a_cp[1]) - _TIE_EPS:
                _append(win, _clip(pb, x0, x1))
                _append(lose, _clip(pa, x0, x1))
                challenger_won = True
            else:
                _append(win, _clip(pa, x0, x1))
                _append(lose, _clip(pb, x0, x1))
        return challenger_won
