"""Piecewise obstructed-distance functions over the query segment.

Everything the CONN algorithms maintain — a point's control point list
(Definition 9), the result list (Definition 6), each level of the COkNN
k-envelope — is the same mathematical object: a partition of ``q`` into
intervals, each carrying a *control point* ``cp`` and a *base* path length,
representing the distance function ``base + dist(cp, q(t))`` on the interval
(``Piece``).  An empty piece (``cp is None``) means "no path known", value
``+inf``.

:meth:`PiecewiseDistance.merge_min` is the single primitive both CPLC's
control-point-list updates and RLU's result-list updates reduce to: the
pointwise minimum of two such functions, with interval boundaries created
exactly at the quadratic split points of Section 3 and with the paper's
Lemma 1 endpoint-dominance rule used to skip solves when one side provably
dominates.  It returns winner *and* loser, which is what lets the COkNN
k-level envelope cascade losers downward (Section 4.5).
"""

from __future__ import annotations

import math
from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..geometry.interval import MERGE_EPS, IntervalSet
from ..geometry.predicates import point_seg_dist
from ..geometry.segment import Segment
from .config import DEFAULT_CONFIG, ConnConfig
from .split import crossing_params, perpendicular_distance
from .stats import QueryStats

_TIE_EPS = 1e-9
"""Value difference below which two paths are considered tied."""


class Piece(NamedTuple):
    """One interval of a piecewise distance function.

    A NamedTuple rather than a dataclass: merges allocate millions of these
    on large workloads and tuple construction is several times cheaper.

    Attributes:
        lo, hi: arc-length parameter range on the query segment.
        cp: control point coordinates, or ``None`` for "unknown/unreachable".
        base: obstructed path length from the owner to ``cp``.
        owner: the data point (payload) this distance function belongs to;
            ``None`` for the initial empty function.
    """

    lo: float
    hi: float
    cp: Optional[Tuple[float, float]]
    base: float
    owner: Any

    def value_at(self, qseg: Segment, t: float) -> float:
        if self.cp is None:
            return math.inf
        return _piece_value(qseg, qseg.length, self.cp, self.base, t)

    def max_value(self, qseg: Segment) -> float:
        """Maximum over the piece = max of the endpoint values (convexity)."""
        if self.cp is None:
            return math.inf
        ln = qseg.length
        return max(_piece_value(qseg, ln, self.cp, self.base, self.lo),
                   _piece_value(qseg, ln, self.cp, self.base, self.hi))

    def clipped(self, lo: float, hi: float) -> "Piece":
        return Piece(lo, hi, self.cp, self.base, self.owner)


def _q_point(qseg: Segment, ln: float, t: float) -> Tuple[float, float]:
    """``q(t)`` replicating ``Segment.point_at`` bit-exactly.

    The float operations mirror :meth:`Segment.point_at` operation for
    operation (clamp, divide, lerp) so coordinates are identical to the
    historic ``qseg.point_at(t)`` path while skipping the Point allocation
    and the per-call ``length`` recomputation (callers hoist ``ln`` once).
    """
    if ln == 0.0:
        return qseg.ax, qseg.ay
    f = min(max(t, 0.0), ln) / ln
    return (qseg.ax + f * (qseg.bx - qseg.ax),
            qseg.ay + f * (qseg.by - qseg.ay))


def _piece_value(qseg: Segment, ln: float, cp: Tuple[float, float],
                 base: float, t: float) -> float:
    """``base + dist(cp, q(t))`` with a pre-hoisted segment length."""
    x, y = _q_point(qseg, ln, t)
    return base + math.hypot(x - cp[0], y - cp[1])


def _clip(p: Piece, lo: float, hi: float) -> Piece:
    """``p.clipped(lo, hi)`` without allocating when the range is unchanged."""
    if lo == p.lo and hi == p.hi:
        return p
    return Piece(lo, hi, p.cp, p.base, p.owner)


def _same_function(a: Piece, b: Piece) -> bool:
    """Do two pieces describe the same distance function (ignoring range)?"""
    if a.owner is not b.owner and a.owner != b.owner:
        return False
    if a.cp is None or b.cp is None:
        return a.cp is None and b.cp is None
    return (abs(a.cp[0] - b.cp[0]) <= _TIE_EPS and
            abs(a.cp[1] - b.cp[1]) <= _TIE_EPS and
            abs(a.base - b.base) <= _TIE_EPS)


def _append(pieces: List[Piece], piece: Piece) -> None:
    """Append with coalescing of adjacent pieces of the same function."""
    if piece.hi - piece.lo <= MERGE_EPS:
        return
    if pieces:
        last = pieces[-1]
        # Identity pre-check: clips share their parent's cp/owner objects,
        # so most coalesces are decided without the tolerance comparisons.
        if piece.lo <= last.hi + MERGE_EPS and (
                (piece.cp is last.cp and piece.base == last.base and
                 (piece.owner is last.owner or piece.owner == last.owner))
                or _same_function(last, piece)):
            pieces[-1] = Piece(last.lo, piece.hi, piece.cp, piece.base,
                               piece.owner)
            return
    pieces.append(piece)


class PiecewiseDistance:
    """A piecewise distance function partitioning ``[0, length(q)]``."""

    __slots__ = ("qseg", "pieces")

    def __init__(self, qseg: Segment, pieces: Sequence[Piece]):
        self.qseg = qseg
        self.pieces: List[Piece] = list(pieces)

    # ------------------------------------------------------------ factories
    @classmethod
    def unknown(cls, qseg: Segment, owner: Any = None) -> "PiecewiseDistance":
        """The initial "no answer yet" function: one empty piece over all of q."""
        return cls(qseg, [Piece(0.0, qseg.length, None, math.inf, owner)])

    @classmethod
    def from_region(cls, qseg: Segment, region: IntervalSet,
                    cp: Tuple[float, float], base: float,
                    owner: Any) -> "PiecewiseDistance":
        """``base + dist(cp, .)`` over ``region``, unknown elsewhere."""
        pieces: List[Piece] = []
        cursor = 0.0
        ln = qseg.length
        for lo, hi in region:
            lo = max(lo, 0.0)
            hi = min(hi, ln)
            if lo - cursor > MERGE_EPS:
                _append(pieces, Piece(cursor, lo, None, math.inf, owner))
            _append(pieces, Piece(max(cursor, lo), hi, cp, base, owner))
            cursor = max(cursor, hi)
        if ln - cursor > MERGE_EPS:
            _append(pieces, Piece(cursor, ln, None, math.inf, owner))
        if not pieces:
            return cls.unknown(qseg, owner)
        return cls(qseg, pieces)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"[{p.lo:.6g},{p.hi:.6g}]@{p.cp}+{p.base:.6g}" for p in self.pieces)
        return f"PiecewiseDistance({inner})"

    # ------------------------------------------------------------ inspection
    def piece_at(self, t: float) -> Piece:
        for p in self.pieces:
            if p.lo - MERGE_EPS <= t <= p.hi + MERGE_EPS:
                return p
        raise ValueError(f"parameter {t} outside [0, {self.qseg.length}]")

    def value(self, t: float) -> float:
        """Function value at ``t``; on an exact piece boundary, the minimum
        of the adjoining pieces (matching the vectorized :meth:`values`)."""
        best = math.inf
        for p in self.pieces:
            if p.lo - MERGE_EPS <= t <= p.hi + MERGE_EPS:
                v = p.value_at(self.qseg, t)
                if v < best:
                    best = v
            elif p.lo > t + MERGE_EPS:
                break
        if best == math.inf and not self.pieces:
            raise ValueError(f"parameter {t} outside [0, {self.qseg.length}]")
        return best

    def owner_at(self, t: float) -> Any:
        return self.piece_at(t).owner

    def values(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized evaluation at sorted parameters ``ts``."""
        ts = np.asarray(ts, dtype=np.float64)
        out = np.full(ts.shape, np.inf)
        ln = self.qseg.length
        ux = (self.qseg.bx - self.qseg.ax) / ln
        uy = (self.qseg.by - self.qseg.ay) / ln
        for p in self.pieces:
            mask = (ts >= p.lo - MERGE_EPS) & (ts <= p.hi + MERGE_EPS)
            if p.cp is None or not mask.any():
                continue
            qx = self.qseg.ax + ts[mask] * ux
            qy = self.qseg.ay + ts[mask] * uy
            vals = p.base + np.hypot(qx - p.cp[0], qy - p.cp[1])
            out[mask] = np.minimum(out[mask], vals)
        return out

    def max_endpoint_value(self) -> float:
        """RLMAX / CPLMAX: max over pieces of their endpoint values.

        Infinite while any part of ``q`` has no known path (the paper's
        ``p_i = emptyset  =>  RLMAX = inf`` convention).
        """
        worst = 0.0
        qseg = self.qseg
        ln = qseg.length
        for p in self.pieces:
            if p.cp is None:
                return math.inf
            v = max(_piece_value(qseg, ln, p.cp, p.base, p.lo),
                    _piece_value(qseg, ln, p.cp, p.base, p.hi))
            if v > worst:
                worst = v
        return worst

    def dominates_challenger(self, region, cp: Tuple[float, float],
                             base: float) -> bool:
        """Would merging ``base + dist(cp, .)`` over ``region`` be a no-op?

        Exact piecewise test used by CPLC to skip provably-losing merges:
        for each of this envelope's pieces overlapping ``region``, the
        challenger's lower bound (``base`` plus the Euclidean distance from
        ``cp`` to the overlapped sub-segment of ``q``) is compared against
        the piece's maximum over the overlap (at an overlap endpoint, by
        convexity).  When the bound never goes below the incumbent, ties
        keep the incumbent and :meth:`merge_min` would return ``changed ==
        False`` with an identical winner — so the caller can skip it.
        Returns False conservatively whenever any overlap is inconclusive.
        """
        qseg = self.qseg
        ln = qseg.length
        pieces = self.pieces
        n = len(pieces)
        cx, cy = cp
        i = 0
        for rlo, rhi in region:
            rlo = max(rlo, 0.0)
            rhi = min(rhi, ln)
            if rhi < rlo:
                continue
            while i < n and pieces[i].hi <= rlo:
                i += 1
            j = i
            while j < n and pieces[j].lo < rhi:
                p = pieces[j]
                if p.cp is None:
                    return False
                a = p.lo if p.lo > rlo else rlo
                b = p.hi if p.hi < rhi else rhi
                if b >= a:
                    x0, y0 = _q_point(qseg, ln, a)
                    x1, y1 = _q_point(qseg, ln, b)
                    lb = base + point_seg_dist(cx, cy, x0, y0, x1, y1)
                    inc = max(_piece_value(qseg, ln, p.cp, p.base, a),
                              _piece_value(qseg, ln, p.cp, p.base, b))
                    if lb < inc:
                        return False
                j += 1
        return True

    def all_unknown(self) -> bool:
        return all(p.cp is None for p in self.pieces)

    def covered(self) -> bool:
        return all(p.cp is not None for p in self.pieces)

    def boundaries(self) -> List[float]:
        out = [self.pieces[0].lo] if self.pieces else []
        out.extend(p.hi for p in self.pieces)
        return out

    def split_points(self) -> List[float]:
        """Interior boundaries where the *owner* changes (paper's split points)."""
        out: List[float] = []
        for a, b in zip(self.pieces, self.pieces[1:]):
            if a.owner is not b.owner and a.owner != b.owner:
                out.append(a.hi)
        return out

    def owner_tuples(self) -> List[Tuple[Any, Tuple[float, float]]]:
        """The user-facing result list: ``(owner, (lo, hi))`` merged by owner."""
        out: List[Tuple[Any, Tuple[float, float]]] = []
        for p in self.pieces:
            key = p.owner if p.cp is not None else None
            if out and (out[-1][0] is key or out[-1][0] == key):
                out[-1] = (key, (out[-1][1][0], p.hi))
            else:
                out.append((key, (p.lo, p.hi)))
        return out

    def replace_span(self, lo: float, hi: float,
                     other: "PiecewiseDistance") -> "PiecewiseDistance":
        """Splice ``other`` over the parameter span ``[lo, hi]``.

        ``other`` must be a piecewise distance over the collinear
        sub-segment of ``self.qseg`` running from ``point_at(lo)`` to
        ``point_at(hi)`` — its pieces are parameterized from 0 and are
        shifted by ``lo`` into this function's parameterization.  Because
        control points live in world coordinates and the sub-segment shares
        the parent's direction, the shifted pieces evaluate identically.

        This is the primitive behind the continuous-monitor layer's local
        repair: re-run the engine on the affected span only, splice the
        fresh answer over the old one, keep everything else untouched.
        """
        ln = self.qseg.length
        lo = max(0.0, min(lo, ln))
        hi = max(lo, min(hi, ln))
        if abs((hi - lo) - other.qseg.length) > 1e-6:
            raise ValueError(
                f"replacement spans {other.qseg.length:g} but the span is "
                f"{hi - lo:g} long")
        pieces: List[Piece] = []
        for p in self.pieces:
            if p.hi <= lo + MERGE_EPS:
                _append(pieces, p)
            elif p.lo < lo - MERGE_EPS:
                _append(pieces, p.clipped(p.lo, lo))
        mid = [Piece(lo + p.lo, lo + p.hi, p.cp, p.base, p.owner)
               for p in other.pieces]
        if mid:
            # Pin the outer boundaries exactly to the span: the sub-segment's
            # length may drift from ``hi - lo`` by float rounding, and a gap
            # wider than the merge tolerance would break the partition.
            mid[0] = Piece(lo, mid[0].hi, mid[0].cp, mid[0].base,
                           mid[0].owner)
            mid[-1] = Piece(mid[-1].lo, hi, mid[-1].cp, mid[-1].base,
                            mid[-1].owner)
        for p in mid:
            _append(pieces, p)
        for p in self.pieces:
            if p.lo >= hi - MERGE_EPS:
                _append(pieces, p.clipped(max(p.lo, hi), p.hi))
            elif p.hi > hi + MERGE_EPS:
                _append(pieces, p.clipped(hi, p.hi))
        return PiecewiseDistance(self.qseg, pieces)

    def assert_partition(self) -> None:
        """Test hook: pieces must exactly partition ``[0, length]`` in order."""
        assert self.pieces, "no pieces"
        assert abs(self.pieces[0].lo) <= 1e-6, f"starts at {self.pieces[0].lo}"
        assert abs(self.pieces[-1].hi - self.qseg.length) <= 1e-6
        for a, b in zip(self.pieces, self.pieces[1:]):
            assert abs(a.hi - b.lo) <= 1e-6, f"gap {a.hi} -> {b.lo}"
            assert a.hi - a.lo > 0, "empty piece"

    # ----------------------------------------------------------------- merge
    def merge_min(self, other: "PiecewiseDistance",
                  cfg: ConnConfig = DEFAULT_CONFIG,
                  stats: QueryStats | None = None
                  ) -> Tuple["PiecewiseDistance", "PiecewiseDistance", bool]:
        """Pointwise minimum against a challenger function.

        Returns:
            ``(winner, loser, changed)`` — the minimum envelope, the
            pointwise-maximum remainder (for k-level cascading), and whether
            the challenger won anywhere.  Ties keep the incumbent.
        """
        qseg = self.qseg
        ln = qseg.length
        stats = stats if stats is not None else QueryStats()
        win: List[Piece] = []
        lose: List[Piece] = []
        changed = False
        ia = ib = 0
        A = self.pieces
        B = other.pieces
        cursor = 0.0
        while ia < len(A) and ib < len(B):
            pa = A[ia]
            pb = B[ib]
            nxt = min(pa.hi, pb.hi)
            if nxt - cursor > MERGE_EPS:
                # Unknown sides short-circuit here: challengers are typically
                # finite on a few intervals only, and copying the incumbent
                # over the unknown spans is the merge's bulk.
                if pb.cp is None:
                    _append(win, _clip(pa, cursor, nxt))
                    _append(lose, _clip(pb, cursor, nxt))
                elif pa.cp is None:
                    _append(win, _clip(pb, cursor, nxt))
                    _append(lose, _clip(pa, cursor, nxt))
                    changed = True
                else:
                    challenger_won = self._resolve(pa, pb, cursor, nxt, ln,
                                                   win, lose, cfg, stats)
                    changed = changed or challenger_won
            cursor = nxt
            if pa.hi <= nxt + MERGE_EPS:
                ia += 1
            if pb.hi <= nxt + MERGE_EPS:
                ib += 1
        return (PiecewiseDistance(qseg, win), PiecewiseDistance(qseg, lose),
                changed)

    def _resolve(self, pa: Piece, pb: Piece, lo: float, hi: float, ln: float,
                 win: List[Piece], lose: List[Piece],
                 cfg: ConnConfig, stats: QueryStats) -> bool:
        """Resolve one overlap interval; returns True when challenger won any part."""
        qseg = self.qseg
        a_cp = pa.cp
        b_cp = pb.cp
        if b_cp is None:
            _append(win, _clip(pa, lo, hi))
            _append(lose, _clip(pb, lo, hi))
            return False
        if a_cp is None:
            _append(win, _clip(pb, lo, hi))
            _append(lose, _clip(pa, lo, hi))
            return True
        # Identical control points: the smaller base wins outright.
        if (abs(a_cp[0] - b_cp[0]) <= _TIE_EPS and
                abs(a_cp[1] - b_cp[1]) <= _TIE_EPS):
            if pb.base < pa.base - _TIE_EPS:
                _append(win, _clip(pb, lo, hi))
                _append(lose, _clip(pa, lo, hi))
                return True
            _append(win, _clip(pa, lo, hi))
            _append(lose, _clip(pb, lo, hi))
            return False

        a_base = pa.base
        b_base = pb.base
        xlo, ylo = _q_point(qseg, ln, lo)
        xhi, yhi = _q_point(qseg, ln, hi)
        va_lo = a_base + math.hypot(xlo - a_cp[0], ylo - a_cp[1])
        va_hi = a_base + math.hypot(xhi - a_cp[0], yhi - a_cp[1])
        vb_lo = b_base + math.hypot(xlo - b_cp[0], ylo - b_cp[1])
        vb_hi = b_base + math.hypot(xhi - b_cp[0], yhi - b_cp[1])
        if cfg.use_lemma1:
            # Lemma 1: endpoint dominance plus the farther-control-point
            # condition proves dominance over the whole interval.
            h_a = perpendicular_distance(qseg, a_cp[0], a_cp[1])
            h_b = perpendicular_distance(qseg, b_cp[0], b_cp[1])
            if va_lo <= vb_lo + _TIE_EPS and va_hi <= vb_hi + _TIE_EPS and \
                    h_b >= h_a:
                stats.lemma1_prunes += 1
                _append(win, _clip(pa, lo, hi))
                _append(lose, _clip(pb, lo, hi))
                return False
            if vb_lo < va_lo - _TIE_EPS and vb_hi < va_hi - _TIE_EPS and \
                    h_a >= h_b:
                stats.lemma1_prunes += 1
                _append(win, _clip(pb, lo, hi))
                _append(lose, _clip(pa, lo, hi))
                return True

        stats.split_solves += 1
        roots = crossing_params(qseg, b_cp, b_base, a_cp, a_base, lo, hi)
        edges = [lo, *roots, hi]
        challenger_won = False
        for x0, x1 in zip(edges, edges[1:]):
            if x1 - x0 <= MERGE_EPS:
                continue
            mid = 0.5 * (x0 + x1)
            xm, ym = _q_point(qseg, ln, mid)
            if b_base + math.hypot(xm - b_cp[0], ym - b_cp[1]) < \
                    a_base + math.hypot(xm - a_cp[0], ym - a_cp[1]) - _TIE_EPS:
                _append(win, _clip(pb, x0, x1))
                _append(lose, _clip(pa, x0, x1))
                challenger_won = True
            else:
                _append(win, _clip(pa, x0, x1))
                _append(lose, _clip(pb, x0, x1))
        return challenger_won
