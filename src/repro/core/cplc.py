"""Control Point List Computation — CPLC (Algorithm 2).

Given a data point ``p`` whose relevant obstacles are already in the local
visibility graph, CPLC derives ``p``'s *control point list* over the query
segment: a piecewise distance function whose piece on interval ``R`` says
"the shortest path from ``p`` to any ``s in R`` goes through control point
``cp``, costing ``||p, cp|| + dist(cp, s)``" (Definitions 8-9).

The traversal is Dijkstra order from ``p`` (so each node arrives with its
final obstructed distance and its shortest-path predecessor), with the
paper's three optimizations, each independently switchable:

* **Lemma 5** — a node ``v`` need only be considered over ``VR_v - VR_u``
  where ``u`` is its shortest-path predecessor: wherever ``u`` sees ``q``,
  the path through ``v`` cannot be shorter.
* **Lemma 6** — an interval of that difference that is an interior "hole" of
  ``VR_u`` can be dropped when ``v`` lies outside the triangle spanned by
  ``u`` and the hole endpoints.
* **Lemma 7** — the traversal stops once ``||p, v|| >= CPLMAX``, the largest
  distance the current list already guarantees.
"""

from __future__ import annotations

from typing import Any

from ..geometry.interval import IntervalSet
from ..geometry.predicates import point_in_triangle
from ..routing.backends import ObstructedGraph
from .config import DEFAULT_CONFIG, ConnConfig
from .distance_function import PiecewiseDistance
from .stats import QueryStats


def compute_cpl(vg: ObstructedGraph, point_node: int, owner: Any,
                cfg: ConnConfig = DEFAULT_CONFIG,
                stats: QueryStats | None = None) -> PiecewiseDistance:
    """The control point list of ``point_node``'s point over the query segment.

    Args:
        vg: graph surface (backend session or local visibility graph)
            already covering the point's search range.
        point_node: transient graph node of the data point.
        owner: payload to stamp on every piece (the data point itself).

    Returns:
        A :class:`PiecewiseDistance` partitioning ``q``; pieces with
        ``cp=None`` mark parts of ``q`` unreachable from the point.
    """
    stats = stats if stats is not None else QueryStats()
    qseg = vg.qseg
    cpl = PiecewiseDistance.unknown(qseg, owner)
    cplmax = cpl.max_endpoint_value()
    for dist_v, v, pred in vg.dijkstra_order(point_node):
        if cfg.use_lemma7 and dist_v >= cplmax:
            stats.lemma7_cutoffs += 1
            break
        stats.nodes_expanded += 1
        region = vg.visible_region_of(v)
        if cfg.use_lemma5 and pred is not None:
            vr_pred = vg.visible_region_of(pred)
            region = region.subtract(vr_pred)
            if cfg.use_lemma6 and region:
                region = _lemma6_refine(vg, qseg, region, vr_pred, pred, v,
                                        stats)
        if region.is_empty():
            continue
        vx, vy = vg.node_point(v)
        challenger = PiecewiseDistance.from_region(qseg, region, (vx, vy),
                                                   dist_v, owner)
        cpl, _loser, changed = cpl.merge_min(challenger, cfg, stats)
        if changed:
            cplmax = cpl.max_endpoint_value()
    return cpl


def _lemma6_refine(vg: ObstructedGraph, qseg, region: IntervalSet,
                   vr_pred: IntervalSet, pred: int, v: int,
                   stats: QueryStats) -> IntervalSet:
    """Drop intervals that Lemma 6's triangle test proves irrelevant.

    An interval of ``VR_v - VR_u`` whose endpoints both touch ``VR_u`` is an
    interior hole of the predecessor's visible region; if ``v`` lies outside
    the triangle formed by ``u`` and the hole endpoints, the detour via
    ``v`` can never beat the path around the blocking obstacle.
    """
    ux, uy = vg.node_point(pred)
    vx, vy = vg.node_point(v)
    kept = []
    for lo, hi in region:
        if vr_pred.contains(lo) and vr_pred.contains(hi):
            p_lo = qseg.point_at(lo)
            p_hi = qseg.point_at(hi)
            if not point_in_triangle(vx, vy, ux, uy, p_lo.x, p_lo.y,
                                     p_hi.x, p_hi.y):
                stats.lemma6_prunes += 1
                continue
        kept.append((lo, hi))
    return IntervalSet(kept)
