"""Control Point List Computation — CPLC (Algorithm 2).

Given a data point ``p`` whose relevant obstacles are already in the local
visibility graph, CPLC derives ``p``'s *control point list* over the query
segment: a piecewise distance function whose piece on interval ``R`` says
"the shortest path from ``p`` to any ``s in R`` goes through control point
``cp``, costing ``||p, cp|| + dist(cp, s)``" (Definitions 8-9).

The traversal is Dijkstra order from ``p`` (so each node arrives with its
final obstructed distance and its shortest-path predecessor), with the
paper's three optimizations, each independently switchable:

* **Lemma 5** — a node ``v`` need only be considered over ``VR_v - VR_u``
  where ``u`` is its shortest-path predecessor: wherever ``u`` sees ``q``,
  the path through ``v`` cannot be shorter.
* **Lemma 6** — an interval of that difference that is an interior "hole" of
  ``VR_u`` can be dropped when ``v`` lies outside the triangle spanned by
  ``u`` and the hole endpoints.
* **Lemma 7** — the traversal stops once ``||p, v|| >= CPLMAX``, the largest
  distance the current list already guarantees.

On top of the paper's rules this reproduction adds an exact *Euclidean
prefilter* (``use_euclid_prefilter``): a node whose straight-line lower
bound ``||p, v||_O + dist(v, q)`` already reaches CPLMAX cannot improve the
envelope anywhere, so its visible region and merge are skipped entirely.
"""

from __future__ import annotations

import math
from typing import Any

from ..geometry.interval import IntervalSet
from ..geometry.predicates import point_in_triangle
from ..routing.backends import ObstructedGraph
from .config import DEFAULT_CONFIG, ConnConfig
from .distance_function import PiecewiseDistance
from .stats import QueryStats


def compute_cpl(vg: ObstructedGraph, point_node: int, owner: Any,
                cfg: ConnConfig = DEFAULT_CONFIG,
                stats: QueryStats | None = None,
                bound: float = math.inf,
                global_env: PiecewiseDistance | None = None
                ) -> PiecewiseDistance:
    """The control point list of ``point_node``'s point over the query segment.

    Args:
        vg: graph surface (backend session or local visibility graph)
            already covering the point's search range.
        point_node: transient graph node of the data point.
        owner: payload to stamp on every piece (the data point itself).
        bound: the engine's global result bound (generalized RLMAX).
            Contributions at or above it lose — or tie, which keeps the
            incumbent — at every level of the engine's k-envelope, so the
            traversal breaks there and dominated nodes are skipped.  The
            returned CPL is then only trustworthy *below* the bound, which
            is exactly the part that can reach the result.
        global_env: the k-th (worst) level of the engine's envelope, for
            the piecewise regional form of the same pruning.

    Returns:
        A :class:`PiecewiseDistance` partitioning ``q``; pieces with
        ``cp=None`` mark parts of ``q`` unreachable from the point.
    """
    stats = stats if stats is not None else QueryStats()
    qseg = vg.qseg
    cpl = PiecewiseDistance.unknown(qseg, owner)
    cplmax = cpl.max_endpoint_value()
    prefilter = cfg.use_euclid_prefilter
    use_bound = bound < math.inf
    # This loop touches every settled node of every CPLC Dijkstra, so when
    # the graph surface exposes its raw resumable traversal the settled
    # prefix is consumed directly (replay-cursor discipline identical to
    # _ReplayCore.order, same entries in the same order) instead of paying
    # a generator resume per node; other surfaces fall back to the
    # dijkstra_order iterator.
    st = getattr(vg, "settled_traversal", None)
    if st is None:
        tr = settled = on_settle = None
        entries = iter(vg.dijkstra_order(point_node, bound))
        nxt = entries.__next__
    else:
        tr, on_settle = st(point_node, bound)
        settled = tr.settled
    i = 0
    while True:
        if tr is None:
            try:
                dist_v, v, pred = nxt()
            except StopIteration:
                break
        elif i < len(settled):
            dist_v, v, pred = settled[i]
            i += 1
        else:
            entry = tr.advance()
            if entry is None:
                if i < len(settled):
                    continue
                break
            on_settle(entry)
            continue
        if cfg.use_lemma7 and dist_v >= cplmax:
            stats.lemma7_cutoffs += 1
            break
        if use_bound and dist_v >= bound:
            # No later node can contribute below the global bound either
            # (Dijkstra order is non-decreasing), so the whole remaining
            # traversal is irrelevant to the result.
            stats.global_bound_cutoffs += 1
            break
        stats.nodes_expanded += 1
        vx, vy = vg.node_point(v)
        lb = None
        if prefilter and cplmax < math.inf:
            lb = dist_v + qseg.dist_point(vx, vy)
            if lb >= cplmax:
                # Euclidean lower bound: every value ``v`` could contribute
                # is >= dist_v + dist(v, q(t)), while the incumbent is
                # <= CPLMAX everywhere (each piece is convex with its
                # maximum at an endpoint).  Ties keep the incumbent, so the
                # merge is provably a no-op — skip the visible-region and
                # envelope work outright.
                stats.prefilter_skips += 1
                continue
        if use_bound:
            if lb is None:
                lb = dist_v + qseg.dist_point(vx, vy)
            if lb >= bound:
                stats.global_bound_cutoffs += 1
                continue
        region = vg.visible_region_of(v)
        if cfg.use_lemma5 and pred is not None:
            vr_pred = vg.visible_region_of(pred)
            region = region.subtract(vr_pred)
            if cfg.use_lemma6 and region:
                region = _lemma6_refine(vg, qseg, region, vr_pred, pred, v,
                                        stats)
        if region.is_empty():
            continue
        if global_env is not None and \
                global_env.dominates_challenger(region, (vx, vy), dist_v):
            # Regional form of the global bound: a contribution whose
            # Euclidean lower bound cannot beat the engine's current k-th
            # best anywhere on its region can never surface in any result
            # level.  Checked before the point's own envelope because the
            # mature cross-point incumbent dominates far more often.
            stats.global_bound_cutoffs += 1
            continue
        if prefilter and cpl.dominates_challenger(region, (vx, vy), dist_v):
            # Piecewise regional bound: the challenger is only finite on its
            # visible region, and comparing its Euclidean lower bound
            # against the incumbent piece by piece over that region often
            # proves the merge a no-op after Lemma 5 shrank the region.
            # (Unlike the CPLMAX gate above this works even while parts of
            # the envelope are still unknown: the check itself refuses to
            # skip wherever the region overlaps an unknown piece.)
            # Once the envelope grows past a few pieces this check runs on
            # the envelope's numpy piece table: whole overlapping piece
            # ranges are screened per region interval, and only entries
            # within the float screen band are re-decided in exact scalar
            # arithmetic — so the skip/keep decision is identical to the
            # scalar loop's.
            stats.prefilter_skips += 1
            continue
        challenger = PiecewiseDistance.from_region(qseg, region, (vx, vy),
                                                   dist_v, owner)
        cpl, _loser, changed = cpl.merge_min(challenger, cfg, stats)
        if changed:
            cplmax = cpl.max_endpoint_value()
    return cpl


def _lemma6_refine(vg: ObstructedGraph, qseg, region: IntervalSet,
                   vr_pred: IntervalSet, pred: int, v: int,
                   stats: QueryStats) -> IntervalSet:
    """Drop intervals that Lemma 6's triangle test proves irrelevant.

    An interval of ``VR_v - VR_u`` whose endpoints both touch ``VR_u`` is an
    interior hole of the predecessor's visible region; if ``v`` lies outside
    the triangle formed by ``u`` and the hole endpoints, the detour via
    ``v`` can never beat the path around the blocking obstacle.
    """
    ux, uy = vg.node_point(pred)
    vx, vy = vg.node_point(v)
    kept = []
    for lo, hi in region:
        if vr_pred.contains(lo) and vr_pred.contains(hi):
            p_lo = qseg.point_at(lo)
            p_hi = qseg.point_at(hi)
            if not point_in_triangle(vx, vy, ux, uy, p_lo.x, p_lo.y,
                                     p_hi.x, p_hi.y):
                stats.lemma6_prunes += 1
                continue
        kept.append((lo, hi))
    return IntervalSet(kept)
