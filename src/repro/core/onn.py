"""Snapshot obstructed (k-)nearest-neighbor queries at a point.

This is the ONN query of Zhang et al. [31] / Xia et al. [29] the paper
builds on: best-first scan of the data R*-tree in ascending Euclidean
distance (the lower bound of the obstructed distance), computing each
candidate's exact obstructed distance on an incrementally grown local
visibility graph, terminating once the next candidate's Euclidean distance
exceeds the current k-th best obstructed distance.

Also exposes :func:`obstructed_distance_indexed` — pairwise obstructed
distance against an obstacle R*-tree without touching the full obstacle set
(Lemma 3's retrieval bound applied to a point pair).
"""

from __future__ import annotations

import bisect
import math
import time
from typing import Any, List, Tuple

from ..geometry.predicates import EPS
from ..geometry.segment import Segment
from ..index.nearest import IncrementalNearest
from ..index.rstar import RStarTree
from ..obstacles.visgraph import LocalVisibilityGraph
from .config import DEFAULT_CONFIG, ConnConfig
from .ior import ObstacleRetriever
from .stats import QueryStats


def _stable_distance(vg: LocalVisibilityGraph, retriever: ObstacleRetriever,
                     source_node: int, target_node: int) -> float:
    """Shortest-path length valid under Lemma 3's retrieval criterion.

    Repeats (Dijkstra, retrieve up to path length) until the path no longer
    triggers retrieval; the local path is then the true obstructed distance.
    """
    while True:
        d = vg.shortest_distances(source_node, (target_node,))[target_node]
        if d <= retriever.radius + EPS:
            return d
        if math.isinf(d):
            if retriever.ensure(math.inf) == 0:
                return d
            continue
        if retriever.ensure(d) == 0:
            return d


def onn(data_tree: RStarTree, obstacle_tree: RStarTree,
        x: float, y: float, k: int = 1,
        config: ConnConfig = DEFAULT_CONFIG) -> Tuple[List[Tuple[Any, float]], QueryStats]:
    """The ``k`` obstructed nearest neighbors of point ``(x, y)``.

    Returns:
        ``(neighbors, stats)`` where neighbors is a list of
        ``(payload, obstructed_distance)`` in ascending distance order
        (fewer than ``k`` when the data set is small or sealed off).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    stats = QueryStats()
    snapshots = [(t, t.stats.snapshot())
                 for t in (data_tree.tracker, obstacle_tree.tracker)]
    started = time.perf_counter()
    anchor = Segment(x, y, x, y)
    vg = LocalVisibilityGraph(anchor)
    retriever = ObstacleRetriever(obstacle_tree, anchor, vg, stats)
    scan = IncrementalNearest(data_tree, lambda rect: rect.mindist_point(x, y))
    best: List[Tuple[float, Any]] = []
    while True:
        key = scan.peek_key()
        kth = best[k - 1][0] if len(best) >= k else math.inf
        if config.use_rlmax and key > kth + EPS:
            break
        if math.isinf(key):
            break
        _d, payload, rect = scan.pop()
        stats.npe += 1
        cx, cy = rect.center()
        node = vg.add_point(cx, cy)
        try:
            odist = _stable_distance(vg, retriever, node, vg.S)
        finally:
            vg.remove_point(node)
        if math.isfinite(odist):
            bisect.insort(best, (odist, payload))
    stats.cpu_time_s += time.perf_counter() - started
    stats.svg_size = vg.svg_size
    stats.visibility_tests = vg.visibility_tests
    for tracker, snap in snapshots:
        delta = tracker.stats.delta(snap)
        stats.io.logical_reads += delta.logical_reads
        stats.io.page_faults += delta.page_faults
    return [(payload, d) for d, payload in best[:k]], stats


def obstructed_distance_indexed(a: Tuple[float, float], b: Tuple[float, float],
                                obstacle_tree: RStarTree) -> float:
    """Obstructed distance between two points using the obstacle index.

    Only obstacles within Lemma 3's radius of the pair are ever touched.
    """
    anchor = Segment(a[0], a[1], a[0], a[1])
    stats = QueryStats()
    vg = LocalVisibilityGraph(anchor)
    retriever = ObstacleRetriever(obstacle_tree, anchor, vg, stats)
    node = vg.add_point(b[0], b[1])
    return _stable_distance(vg, retriever, node, vg.S)
