"""Snapshot obstructed (k-)nearest-neighbor queries at a point.

This is the ONN query of Zhang et al. [31] / Xia et al. [29] the paper
builds on: best-first scan of the data R*-tree in ascending Euclidean
distance (the lower bound of the obstructed distance), computing each
candidate's exact obstructed distance on an incrementally grown local
visibility graph, terminating once the next candidate's Euclidean distance
exceeds the current k-th best obstructed distance.

The scan loop is factored into :func:`run_onn_scan`, parameterized over the
candidate feed and the obstacle source, so the free function (cold, plain
:class:`~repro.core.ior.ObstacleRetriever`) and the service layer
(:class:`~repro.service.QueryService`, cache-backed) share one
implementation.

Also exposes :func:`obstructed_distance_indexed` — pairwise obstructed
distance against an obstacle R*-tree without touching the full obstacle set
(Lemma 3's retrieval bound applied to a point pair).
"""

from __future__ import annotations

import bisect
import math
import time
from typing import Any, List, Sequence, Tuple

from ..geometry.predicates import EPS
from ..geometry.segment import Segment
from ..index.nearest import IncrementalNearest
from ..index.pagestore import PageTracker
from ..index.rstar import RStarTree
from ..routing.backends import ObstructedGraph, PerQueryVGBackend
from .config import DEFAULT_CONFIG, ConnConfig
from .ior import ObstacleRetriever, ObstacleSource
from .stats import QueryStats


def _stable_distance(vg: ObstructedGraph, retriever: ObstacleSource,
                     source_node: int, target_node: int) -> float:
    """Shortest-path length valid under Lemma 3's retrieval criterion.

    Repeats (Dijkstra, retrieve up to path length) until the path no longer
    triggers retrieval; the local path is then the true obstructed distance.
    """
    while True:
        d = vg.shortest_distances(source_node, (target_node,))[target_node]
        if d <= retriever.radius + EPS:
            return d
        if math.isinf(d):
            if retriever.ensure(math.inf) == 0:
                return d
            continue
        if retriever.ensure(d) == 0:
            return d


class PointScan:
    """Candidate feed in ascending Euclidean distance to a query point.

    Adapts :class:`~repro.index.nearest.IncrementalNearest` to the engine's
    ``DataSource`` protocol (``pop`` yields centers, not rects).
    """

    def __init__(self, data_tree: RStarTree, x: float, y: float):
        self._scan = IncrementalNearest(
            data_tree, lambda rect: rect.mindist_point(x, y))

    def peek_key(self) -> float:
        return self._scan.peek_key()

    def pop(self) -> Tuple[float, Any, Tuple[float, float]]:
        d, payload, rect = self._scan.pop()
        cx, cy = rect.center()
        return d, payload, (cx, cy)


def run_onn_scan(source, retriever: ObstacleSource,
                 vg: ObstructedGraph, k: int, config: ConnConfig,
                 stats: QueryStats,
                 trackers: Sequence[PageTracker]) -> List[Tuple[Any, float]]:
    """Drive an ONN scan to completion over pluggable sources.

    Args:
        source: candidate feed (``peek_key``/``pop``) in ascending Euclidean
            distance to the anchor point ``vg.S``.
        retriever: obstacle source implementing ``ensure``/``radius``.

    Returns:
        Up to ``k`` ``(payload, obstructed_distance)`` pairs, ascending.
    """
    snapshots = [(t, t.local_stats.snapshot()) for t in trackers]
    started = time.perf_counter()
    best: List[Tuple[float, Any]] = []
    while True:
        key = source.peek_key()
        kth = best[k - 1][0] if len(best) >= k else math.inf
        if config.use_rlmax and key > kth + EPS:
            break
        if math.isinf(key):
            break
        _d, payload, (cx, cy) = source.pop()
        stats.npe += 1
        node = vg.add_point(cx, cy)
        try:
            odist = _stable_distance(vg, retriever, node, vg.S)
        finally:
            vg.remove_point(node)
        if math.isfinite(odist):
            bisect.insort(best, (odist, payload))
    stats.cpu_time_s += time.perf_counter() - started
    stats.svg_size = vg.svg_size
    stats.visibility_tests = vg.visibility_tests
    for tracker, snap in snapshots:
        delta = tracker.local_stats.delta(snap)
        stats.io.logical_reads += delta.logical_reads
        stats.io.page_faults += delta.page_faults
    return [(payload, d) for d, payload in best[:k]]


def onn(data_tree: RStarTree, obstacle_tree: RStarTree,
        x, y: float | None = None, k: int = 1,
        config: ConnConfig = DEFAULT_CONFIG) -> Tuple[List[Tuple[Any, float]], QueryStats]:
    """The ``k`` obstructed nearest neighbors of a query point.

    The point may be given as bare floats ``onn(dt, ot, x, y)``, as one
    tuple ``onn(dt, ot, (x, y))``, or as a
    :class:`~repro.geometry.point.Point`.  A thin shim over a one-shot
    :class:`~repro.service.Workspace` executing an
    :class:`~repro.query.queries.OnnQuery`.

    Returns:
        ``(neighbors, stats)`` where neighbors is a list of
        ``(payload, obstructed_distance)`` in ascending distance order
        (fewer than ``k`` when the data set is small or sealed off).
    """
    from ..service.workspace import Workspace

    ws = Workspace(data_tree=data_tree, obstacle_tree=obstacle_tree)
    return ws.onn(x, y, k=k, config=config)


def obstructed_distance_indexed(a: Tuple[float, float], b: Tuple[float, float],
                                obstacle_tree: RStarTree) -> float:
    """Obstructed distance between two points using the obstacle index.

    Only obstacles within Lemma 3's radius of the pair are ever touched.
    Runs through a one-shot :class:`~repro.routing.PerQueryVGBackend`
    session, the same machinery every engine query uses.
    """
    anchor = Segment(a[0], a[1], a[0], a[1])
    stats = QueryStats()
    with PerQueryVGBackend().attach_endpoints(anchor, stats) as session:
        retriever = ObstacleRetriever(obstacle_tree, anchor, session, stats)
        node = session.add_point(b[0], b[1])
        return _stable_distance(session, retriever, node, session.S)
