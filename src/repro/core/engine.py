"""The CONN/COkNN query engine (Algorithm 4 and its Section 4.5 extension).

One engine serves every variant:

* ``k = 1`` is the paper's CONN: the k-envelope degenerates to the result
  list RL and cascade insertion to the Result List Update algorithm (RLU,
  Algorithm 3) — the same envelope merge, Lemma 1 pruning included.
* ``k > 1`` is COkNN: the envelope keeps ``k`` stacked piecewise functions
  (pointwise 1st, 2nd, ..., k-th smallest); inserting a candidate bubbles
  its losing portions downward, and the generalized RLMAX of Section 4.5 is
  the k-th level's maximum endpoint value.
* Two-tree (2T) and single-tree (1T) layouts differ only in the
  data/obstacle *sources* plugged in (see :mod:`repro.core.conn_1t`).

The data scan is best-first by ``mindist`` to the query segment (the
Euclidean lower bound of the obstructed distance) and stops by Lemma 2 once
the next candidate's ``mindist`` exceeds RLMAX.
"""

from __future__ import annotations

import math
import time
from typing import Any, List, Optional, Protocol, Sequence, Tuple

from ..geometry.predicates import EPS
from ..geometry.segment import Segment
from ..index.nearest import IncrementalNearest
from ..index.pagestore import PageTracker
from ..index.rstar import RStarTree
from ..routing.backends import ObstructedGraph
from .config import ConnConfig
from .cplc import compute_cpl
from .distance_function import PiecewiseDistance
from .ior import ObstacleSource, ior_fixpoint
from .stats import QueryStats


class DataSource(Protocol):
    """Feed of candidate data points in ascending mindist-to-query order."""

    def peek_key(self) -> float:
        """Next candidate's mindist, or ``inf`` when exhausted."""
        ...  # pragma: no cover - protocol

    def pop(self) -> Tuple[float, Any, Tuple[float, float]]:
        """Consume the next candidate: ``(mindist, payload, (x, y))``."""
        ...  # pragma: no cover - protocol


class TreeDataSource:
    """2T data feed: best-first scan of a dedicated data R*-tree."""

    def __init__(self, data_tree: RStarTree, qseg: Segment):
        self._scan = IncrementalNearest(
            data_tree,
            lambda rect: rect.mindist_segment(qseg.ax, qseg.ay, qseg.bx, qseg.by))

    def peek_key(self) -> float:
        return self._scan.peek_key()

    def pop(self) -> Tuple[float, Any, Tuple[float, float]]:
        d, payload, rect = self._scan.pop()
        cx, cy = rect.center()
        return d, payload, (cx, cy)


class KEnvelope:
    """The k stacked minimum envelopes maintained during a COkNN query."""

    def __init__(self, qseg: Segment, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.qseg = qseg
        self.k = k
        self.levels: List[PiecewiseDistance] = [
            PiecewiseDistance.unknown(qseg) for _ in range(k)
        ]

    def insert(self, candidate: PiecewiseDistance, cfg: ConnConfig,
               stats: QueryStats) -> bool:
        """Bubble a candidate distance function into the k levels.

        Pointwise, this inserts the candidate's value into a sorted list of
        the k smallest seen so far (losers of level ``j`` sink to ``j+1``).

        Returns:
            True when any level changed.
        """
        changed_any = False
        carry = candidate
        for j in range(self.k):
            winner, loser, changed = self.levels[j].merge_min(carry, cfg, stats)
            self.levels[j] = winner
            changed_any = changed_any or changed
            carry = loser
            if carry.all_unknown():
                break
        return changed_any

    def rlmax(self) -> float:
        """Generalized RLMAX (Section 4.5): k-th level's max endpoint value."""
        return self.levels[-1].max_endpoint_value()


class ConnResult:
    """Answer of a CONN/COkNN query.

    The primary view is :meth:`tuples` — the paper's result list of
    ``(point, interval)`` pairs — plus accessors for distances, split points
    and, for ``k > 1``, the per-interval k-NN sets.  Satisfies the unified
    result protocol of the declarative API (:meth:`tuples`, :attr:`stats`,
    and a :attr:`query` back-reference filled by ``Workspace.execute``).
    """

    def __init__(self, qseg: Segment, k: int,
                 levels: Sequence[PiecewiseDistance], stats: QueryStats):
        self.qseg = qseg
        self.k = k
        self.levels = list(levels)
        self.stats = stats
        self.query = None
        """The submitted query description (set by ``Workspace.execute``)."""

    @property
    def envelope(self) -> PiecewiseDistance:
        """The nearest-neighbor distance function (level 1)."""
        return self.levels[0]

    def tuples(self) -> List[Tuple[Any, Tuple[float, float]]]:
        """Result list ``[(owner, (lo, hi)), ...]``; owner ``None`` = unreachable."""
        return self.envelope.owner_tuples()

    def split_points(self) -> List[float]:
        """Parameters where the nearest neighbor changes."""
        return self.envelope.split_points()

    def owner_at(self, t: float) -> Any:
        return self.envelope.owner_at(t)

    def distance(self, t: float) -> float:
        """Obstructed distance from ``q(t)`` to its nearest neighbor."""
        return self.envelope.value(t)

    def kth_distance(self, t: float) -> float:
        return self.levels[-1].value(t)

    def knn_at(self, t: float) -> List[Tuple[Any, float]]:
        """The k ``(owner, distance)`` pairs at parameter ``t``, ascending."""
        return [(lv.owner_at(t), lv.value(t)) for lv in self.levels]

    @staticmethod
    def _owner_on(level: PiecewiseDistance, t: float) -> Any:
        """Owner of ``level`` at ``t``, normalized: no known path => ``None``."""
        piece = level.piece_at(t)
        return piece.owner if piece.cp is not None else None

    def knn_intervals(self) -> List[Tuple[Tuple[Any, ...], Tuple[float, float]]]:
        """Partition of ``q`` into intervals with a constant ordered k-NN set.

        Owners are normalized the way :meth:`tuples` normalizes them — a
        level with no known path reports ``None`` — and adjacent intervals
        merge whenever the ordered owner tuple is unchanged.  An interior
        boundary of some level (a control-point change, or an unreachable
        piece changing its recorded loser) therefore never forces a cut
        unless the k-NN tuple actually changes there.
        """
        cuts = sorted({0.0, self.qseg.length,
                       *(b for lv in self.levels for b in lv.boundaries())})
        out: List[Tuple[Tuple[Any, ...], Tuple[float, float]]] = []
        for lo, hi in zip(cuts, cuts[1:]):
            if hi - lo <= EPS:
                continue
            mid = 0.5 * (lo + hi)
            owners = tuple(self._owner_on(lv, mid) for lv in self.levels)
            if out and all(a is b or a == b
                           for a, b in zip(out[-1][0], owners)):
                out[-1] = (owners, (out[-1][1][0], hi))
            else:
                out.append((owners, (lo, hi)))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConnResult(k={self.k}, tuples={len(self.tuples())}, "
                f"npe={self.stats.npe}, noe={self.stats.noe})")


def evaluate_point(vg: ObstructedGraph, retriever: ObstacleSource,
                   payload: Any, x: float, y: float, cfg: ConnConfig,
                   stats: QueryStats, bound: float = math.inf,
                   global_env: Optional[PiecewiseDistance] = None
                   ) -> PiecewiseDistance:
    """Full evaluation of one data point: IOR, CPLC, coverage validation.

    ``vg`` is any :class:`~repro.routing.backends.ObstructedGraph` — a raw
    :class:`~repro.obstacles.visgraph.LocalVisibilityGraph` or a backend
    session obtained from
    :meth:`~repro.routing.backends.ObstructedDistanceBackend.attach_endpoints`.

    ``bound``/``global_env`` carry the engine's incumbent k-envelope into
    the point's evaluation (see :class:`~repro.core.config.ConnConfig`'s
    ``use_global_bound``): IOR, CPLC and coverage validation all stop at
    the bound, because nothing the point claims at or beyond it can reach
    the result.

    Returns the point's control point list as a piecewise distance function
    over the whole query segment — trustworthy below ``bound``.
    """
    point_node = vg.add_point(x, y)
    try:
        ior_fixpoint(vg, retriever, point_node, stats, bound)
        while True:
            cpl = compute_cpl(vg, point_node, payload, cfg, stats, bound,
                              global_env)
            if not cfg.validate_coverage:
                break
            claimed = cpl.max_endpoint_value()
            if claimed > bound:
                # Claims beyond the global bound can never surface, so
                # coverage up to the bound validates everything that can.
                claimed = bound
            if claimed <= retriever.radius + EPS:
                break
            stats.coverage_rounds += 1
            if retriever.ensure(claimed) == 0:
                break
    finally:
        vg.remove_point(point_node)
    return cpl


def run_query(source: DataSource, retriever: ObstacleSource,
              vg: ObstructedGraph, qseg: Segment, k: int,
              cfg: ConnConfig, trackers: Sequence[PageTracker],
              stats: Optional[QueryStats] = None) -> ConnResult:
    """Drive the best-first scan to completion (Algorithm 4 generalized).

    The distance substrate arrives as an attached backend session (or a
    raw local graph): the engine never constructs a visibility graph
    itself, which is what lets the planner swap per-query and
    workspace-shared substrates without touching this loop.
    """
    stats = stats if stats is not None else QueryStats()
    snapshots = [(t, t.local_stats.snapshot()) for t in trackers]
    started = time.perf_counter()
    env = KEnvelope(qseg, k)
    while True:
        key = source.peek_key()
        if math.isinf(key):
            break
        if cfg.use_rlmax and key > env.rlmax() + EPS:
            break  # Lemma 2: no unseen point can improve the result list
        _d, payload, (x, y) = source.pop()
        stats.npe += 1
        if cfg.use_global_bound:
            bound, gdom = env.rlmax(), env.levels[-1]
        else:
            bound, gdom = math.inf, None
        cpl = evaluate_point(vg, retriever, payload, x, y, cfg, stats,
                             bound, gdom)
        env.insert(cpl, cfg, stats)
    stats.cpu_time_s += time.perf_counter() - started
    stats.svg_size = vg.svg_size
    stats.visibility_tests = vg.visibility_tests
    for tracker, snap in snapshots:
        delta = tracker.local_stats.delta(snap)
        stats.io.logical_reads += delta.logical_reads
        stats.io.page_faults += delta.page_faults
    return ConnResult(qseg, k, env.levels, stats)
