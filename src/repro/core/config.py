"""Tunable switches for CONN query processing.

Every pruning rule from the paper can be disabled independently, which the
test suite uses to prove pruning never changes results and the ablation
benchmark uses to measure each rule's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConnConfig:
    """Feature switches for the CONN/COkNN engine.

    Attributes:
        use_lemma1: endpoint-dominance pruning inside envelope merges (skip
            the quadratic solve when the incumbent wins at both interval ends
            and its control point is nearer the query line, Lemma 1).
        use_lemma5: subtract the Dijkstra predecessor's visible region before
            evaluating a node as control point (Lemma 5).
        use_lemma6: drop visible-region holes whose triangle excludes the
            node (Lemma 6).  **Off by default**: the paper's proof implicitly
            assumes the blocking obstacle's silhouette vertex can see the
            whole hole, which fails in dense scenes (holes shadowed by
            several obstacles), and the pruned node can then be a genuine
            control point — this reproduction found concrete counterexamples
            (see ``tests/test_core_cplc.py::TestLemma6Finding``).  Enable for
            paper-faithful ablation runs.
        use_lemma7: cut CPLC's graph traversal at CPLMAX (Lemma 7).
        use_euclid_prefilter: inside CPLC, skip a node entirely when its
            Euclidean lower bound ``dist_v + dist(v, q)`` already reaches
            CPLMAX.  Exact: the incumbent envelope is <= CPLMAX everywhere
            (piece convexity puts each piece's maximum at an endpoint) while
            the challenger is >= the bound everywhere, and ties keep the
            incumbent — so the skipped merge could never change the result.
        use_rlmax: terminate the data scan once the next candidate's mindist
            exceeds RLMAX (Lemma 2).
        use_global_bound: extend Lemma 2's RLMAX from the data scan into
            each point's evaluation: IOR's Dijkstra is cut off at the
            current RLMAX, CPLC's traversal breaks there, and nodes whose
            Euclidean lower bound reaches it are skipped.  Exact: a claimed
            path of length L < RLMAX ends on ``q``, so every obstacle that
            could invalidate it lies within RLMAX of ``q`` and is covered
            by retrieval; claims >= RLMAX lose (or tie, keeping the
            incumbent) at every envelope level.
        validate_coverage: after CPLC, extend obstacle retrieval to the
            maximum claimed distance and recompute until stable (this
            library's strengthening of IOR; see DESIGN.md).
    """

    use_lemma1: bool = True
    use_lemma5: bool = True
    use_lemma6: bool = False
    use_lemma7: bool = True
    use_euclid_prefilter: bool = True
    use_rlmax: bool = True
    use_global_bound: bool = True
    validate_coverage: bool = True

    @classmethod
    def paper_faithful(cls) -> "ConnConfig":
        """Every optimization exactly as published, including Lemma 6."""
        return cls(use_lemma6=True)

    @classmethod
    def no_pruning(cls) -> "ConnConfig":
        """All optional pruning off (correctness baseline / ablation anchor)."""
        return cls(use_lemma1=False, use_lemma5=False, use_lemma6=False,
                   use_lemma7=False, use_euclid_prefilter=False,
                   use_rlmax=False, use_global_bound=False)


DEFAULT_CONFIG = ConnConfig()
