#!/usr/bin/env python3
"""A live dispatch board: continuous queries under a changing city.

A delivery service watches two standing questions — "who is the nearest
courier anywhere along the High-Street corridor?" (a CONN monitor) and
"which couriers are within 25 m travel distance of the depot?" (a range
monitor) — while the city changes underneath: couriers clock in and out,
a road closure goes up, then comes down again.

Every change is applied through ``Workspace.apply``, which keeps the
obstacle indexes, the cross-query obstacle cache, *and* every registered
monitor consistent in one step.  The monitors repair themselves
incrementally — changes outside their influence region are dismissed as
no-ops, segment monitors re-run the engine only on the affected
split-point intervals — and report what changed through callbacks.

Run:  python examples/moving_monitor.py
"""

from __future__ import annotations

from repro import (
    AddObstacle,
    AddSite,
    ConnQuery,
    RangeQuery,
    RectObstacle,
    RemoveObstacle,
    RemoveSite,
    Segment,
    Workspace,
)

DEPOT = (12.0, 40.0)
HIGH_STREET = Segment(10.0, 20.0, 90.0, 20.0)

COURIERS = [
    ("ana", (20.0, 30.0)),
    ("bo", (55.0, 35.0)),
    ("cy", (80.0, 28.0)),
    ("dee", (18.0, 52.0)),
]

BUILDINGS = [
    RectObstacle(30.0, 22.0, 44.0, 32.0),   # the mall, south face on High St
    RectObstacle(60.0, 24.0, 72.0, 34.0),   # offices
    RectObstacle(8.0, 44.0, 16.0, 50.0),    # warehouse next to the depot
]


def describe(event) -> None:
    """Print one maintenance step the way a dispatcher would read it."""
    q = event.monitor.query
    name = q.label or q.kind
    line = f"  [{name:>11}] {event.update.kind:<15} -> {event.action}"
    if event.spans:
        spans = ", ".join(f"[{lo:.0f}, {hi:.0f}]" for lo, hi in event.spans)
        line += f" on {spans}"
    print(line)
    delta = event.delta
    for lo, hi, old, new in delta.intervals:
        print(f"        {lo:6.1f}..{hi:6.1f}: {old} -> {new}")
    for payload, dist in delta.added:
        print(f"        + {payload} at travel distance {dist:.1f}")
    for payload, _dist in delta.removed:
        print(f"        - {payload} no longer in reach")
    for payload, dist in delta.changed:
        print(f"        ~ {payload} now at travel distance {dist:.1f}")


def main() -> None:
    ws = Workspace.from_points(COURIERS, BUILDINGS)
    monitors = ws.monitors
    conn = monitors.register(
        ConnQuery(HIGH_STREET, label="high-street"), callback=describe)
    near_depot = monitors.register(
        RangeQuery(DEPOT, 25.0, label="near-depot"), callback=describe)

    print("Standing results at opening time")
    print("  nearest courier along High Street:")
    for owner, (lo, hi) in conn.result.tuples():
        print(f"    {lo:6.1f}..{hi:6.1f}: {owner}")
    print("  couriers within 25 m travel of the depot: "
          f"{[p for p, _d in near_depot.result.tuples()]}")

    print("\n09:10  eli clocks in near the east end of High Street")
    ws.apply([AddSite("eli", 85.0, 24.0)])

    print("\n09:25  road closure: scaffolding goes up mid-corridor")
    scaffolding = RectObstacle(48.0, 16.0, 52.0, 26.0)
    ws.apply([AddObstacle(scaffolding)])

    print("\n09:40  ana clocks out, fay clocks in by the depot")
    ws.apply([RemoveSite("ana", 20.0, 30.0), AddSite("fay", 14.0, 36.0)])

    print("\n11:00  scaffolding comes down")
    ws.apply([RemoveObstacle(scaffolding)])

    print("\nStanding results at the end of the shift")
    for owner, (lo, hi) in conn.result.tuples():
        print(f"    {lo:6.1f}..{hi:6.1f}: {owner}")
    print("  couriers within 25 m travel of the depot: "
          f"{[p for p, _d in near_depot.result.tuples()]}")

    stats = monitors.stats
    print(f"\nmaintenance: {stats.updates} updates fanned out, "
          f"{stats.noops} no-ops, {stats.repairs} span repairs, "
          f"{stats.reruns} full reruns "
          f"({100.0 * stats.noop_rate:.0f}% dismissed without index work); "
          f"cache: {ws.cache.stats.patched} patched, "
          f"{ws.cache.stats.evicted} evicted, "
          f"{ws.cache.stats.invalidations} invalidations")


if __name__ == "__main__":
    main()
