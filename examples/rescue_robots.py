#!/usr/bin/env python3
"""Disaster-response scenario from the paper's introduction.

Robots have mapped survivors inside a collapsed structure.  Rubble piles are
obstacles; rescue crews advance along cleared corridors (query segments).
For each corridor a COkNN query reports, for every position, the k nearest
survivors by actual travel distance around the rubble — the information the
paper argues emergency planners need (Section 1).

Run:  python examples/rescue_robots.py
"""

from __future__ import annotations

import random

from repro import RStarTree, RectObstacle, Segment, coknn, onn


def build_site(rng: random.Random):
    """A 200 x 120 collapsed hall: rubble piles + detected survivors."""
    rubble = []
    for _ in range(18):
        x = rng.uniform(10, 180)
        y = rng.uniform(10, 100)
        rubble.append(RectObstacle(x, y, x + rng.uniform(4, 22),
                                   y + rng.uniform(4, 14)))

    def buried(px, py):
        return any(r.rect.contains_point_open(px, py) for r in rubble)

    survivors = []
    while len(survivors) < 14:
        x = rng.uniform(5, 195)
        y = rng.uniform(5, 115)
        if not buried(x, y):
            survivors.append((f"S{len(survivors):02d}", (x, y)))
    return survivors, rubble


def main() -> None:
    rng = random.Random(2009)
    survivors, rubble = build_site(rng)

    survivor_tree = RStarTree()
    for name, (x, y) in survivors:
        survivor_tree.insert_point(name, x, y)
    rubble_tree = RStarTree()
    for r in rubble:
        rubble_tree.insert(r, r.mbr())

    corridors = {
        "north corridor": Segment(5, 105, 195, 105),
        "center aisle": Segment(5, 55, 195, 60),
        "entry ramp": Segment(5, 5, 90, 40),
    }

    k = 2
    for name, corridor in corridors.items():
        print(f"=== {name}: {k} nearest survivors along the way ===")
        result = coknn(survivor_tree, rubble_tree, corridor, k=k)
        for owners, (lo, hi) in result.knn_intervals():
            mid = 0.5 * (lo + hi)
            dists = [f"{who}@{d:.1f}" if who is not None else "unreachable"
                     for who, d in result.knn_at(mid)]
            print(f"  [{lo:6.1f},{hi:6.1f}] -> " + ", ".join(dists))
        s = result.stats
        print(f"  ({s.npe} survivors evaluated, {s.noe} rubble piles "
              f"considered, |SVG| = {s.svg_size})\n")

    # A staging point: plain snapshot ONN.
    staging = (100.0, 2.0)
    nearest, _stats = onn(survivor_tree, rubble_tree, *staging, k=3)
    print(f"From the staging point {staging}, closest survivors by travel "
          f"distance:")
    for who, d in nearest:
        print(f"  {who}: {d:.1f} m")


if __name__ == "__main__":
    main()
