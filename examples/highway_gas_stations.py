#!/usr/bin/env python3
"""The paper's Figure 1, end to end: CNN vs CONN along a highway.

A driver on highway I-95 (the query segment) wants the nearest gas station
continuously along the trip.  Ignoring obstacles (rivers, fenced land,
buildings) gives the classic CNN answer; accounting for them moves both the
split points and the winning stations.  The script prints both result lists
side by side and verifies the CONN list against brute force.

Run:  python examples/highway_gas_stations.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    RStarTree,
    RectObstacle,
    SegmentObstacle,
    Segment,
    cnn_euclidean,
    conn,
    naive_conn,
)


def main() -> None:
    # Highway from mile 0 to mile 10 (units: 0.1 mile).
    highway = Segment(0, 0, 1000, 0)

    stations = {
        "Shell": (80.0, 180.0),
        "BP": (350.0, 120.0),
        "Esso": (120.0, 100.0),
        "Gulf": (620.0, 130.0),
        "Citgo": (900.0, 140.0),
        "Hess": (550.0, 450.0),
    }
    data = RStarTree()
    for name, (x, y) in stations.items():
        data.insert_point(name, x, y)

    # A river with one bridge gap, plus two fenced compounds.
    obstacles = [
        SegmentObstacle(0, 60, 420, 60),      # river, west stretch
        SegmentObstacle(480, 60, 1000, 60),   # river, east stretch (gap = bridge)
        RectObstacle(100, 70, 160, 95),       # compound in front of Esso
        RectObstacle(580, 70, 660, 110),      # compound in front of Gulf
    ]
    obstacle_tree = RStarTree()
    for o in obstacles:
        obstacle_tree.insert(o, o.mbr())

    euclid = cnn_euclidean(data, highway)
    obstructed = conn(data, obstacle_tree, highway)

    print("CNN (Euclidean)                     CONN (obstructed)")
    print("-" * 72)
    rows = max(len(euclid.tuples()), len(obstructed.tuples()))
    e_tuples = euclid.tuples() + [None] * rows
    o_tuples = obstructed.tuples() + [None] * rows
    for e, o in zip(e_tuples[:rows], o_tuples[:rows]):
        left = f"{e[0]:>6} on [{e[1][0]:6.1f},{e[1][1]:6.1f}]" if e else ""
        right = f"{o[0]:>6} on [{o[1][0]:6.1f},{o[1][1]:6.1f}]" if o else ""
        print(f"{left:<36}{right}")

    print("\nSplit points (CNN) :",
          [round(t, 1) for t in euclid.split_points()])
    print("Split points (CONN):",
          [round(t, 1) for t in obstructed.split_points()])

    # Independent verification against the brute-force oracle.
    ts = np.linspace(0, highway.length, 201)
    _owners, want = naive_conn(list(stations.items()), obstacles, highway, ts)
    got = obstructed.envelope.values(ts)
    worst = float(np.max(np.abs(got - want)))
    print(f"\nVerified against brute force at {len(ts)} positions "
          f"(max deviation {worst:.2e}).")

    mid = highway.length / 2
    print(f"\nAt mile {mid/100:.0f}: Euclidean NN = {euclid.owner_at(mid)!r} "
          f"at {euclid.distance(mid):.1f}; obstructed NN = "
          f"{obstructed.owner_at(mid)!r} at {obstructed.distance(mid):.1f} "
          f"(the river forces the detour over the bridge).")


if __name__ == "__main__":
    main()
