#!/usr/bin/env python3
"""Quickstart: a CONN query on a small hand-built scene.

Builds two R*-trees (data points and obstacles), runs a continuous
obstructed nearest-neighbor query along a segment — first through the
classic one-call API, then through the declarative API (a typed
:class:`~repro.ConnQuery` planned and executed on a workspace) — and prints
the result list, the split points, the query plan, and a comparison with
the obstacle-free (Euclidean) continuous NN — the contrast Figure 1 of the
paper illustrates.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ConnQuery,
    RStarTree,
    RectObstacle,
    Segment,
    Workspace,
    cnn_euclidean,
    conn,
    obstructed_path,
)


def main() -> None:
    # Six facilities in a 100 x 100 neighborhood.
    facilities = {
        "cafe": (2.0, 12.0),
        "bakery": (35.0, 12.0),
        "library": (90.0, 14.0),
        "kiosk": (10.0, 6.0),
        "museum": (55.0, 45.0),
        "pharmacy": (62.0, 13.0),
    }
    data = RStarTree()
    for name, (x, y) in facilities.items():
        data.insert_point(name, x, y)

    # Two buildings block direct lines of sight; the first walls the kiosk
    # off from the start of the street.
    buildings = [RectObstacle(4, 0, 6, 12), RectObstacle(45, 4, 58, 9)]
    obstacle_tree = RStarTree()
    for b in buildings:
        obstacle_tree.insert(b, b.mbr())

    # Walk along the street y = 0 from x = 0 to x = 100.
    walk = Segment(0, 0, 100, 0)

    print("=== CONN: nearest facility by OBSTRUCTED distance ===")
    result = conn(data, obstacle_tree, walk)
    for owner, (lo, hi) in result.tuples():
        print(f"  on [{lo:6.2f}, {hi:6.2f}] the nearest facility is {owner}")
    print(f"  split points: {[round(t, 2) for t in result.split_points()]}")

    # The same query, declaratively: describe it, plan it, execute it.
    ws = Workspace.from_trees(data, obstacle_tree)
    query = ConnQuery(walk, label="evening-walk")
    print("\n=== The same query through the declarative API ===")
    print(ws.plan(query).explain())
    declarative = ws.execute(query)
    assert declarative.tuples() == result.tuples()
    assert declarative.query is query
    print("  execute() returned the identical result list")

    print("\n=== CNN (Euclidean, ignoring the buildings) ===")
    euclid = cnn_euclidean(data, walk)
    for owner, (lo, hi) in euclid.tuples():
        print(f"  on [{lo:6.2f}, {hi:6.2f}] the nearest facility is {owner}")

    # Where the two disagree, show why: the obstructed path detours.
    t = 0.0
    owner_o = result.owner_at(t)
    owner_e = euclid.owner_at(t)
    if owner_o != owner_e:
        print(f"\nAt the start of the walk the Euclidean NN is {owner_e!r} "
              f"but the obstructed NN is {owner_o!r}:")
        d, path = obstructed_path(facilities[owner_e], (0.0, 0.0), buildings)
        print(f"  reaching {owner_e!r} really takes {d:.2f} "
              f"(straight-line {abs(facilities[owner_e][0]):.2f}-ish) via "
              + " -> ".join(f"({p.x:.0f},{p.y:.0f})" for p in path))

    print(f"\nQuery statistics: {result.stats.npe} points evaluated, "
          f"{result.stats.noe} obstacles retrieved, "
          f"|SVG| = {result.stats.svg_size}, "
          f"{result.stats.io.page_faults} page faults")


if __name__ == "__main__":
    main()
