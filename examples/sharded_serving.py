#!/usr/bin/env python3
"""Serving one city from four shards — with answers nobody can tell apart.

A delivery platform outgrows one workspace: the city splits into a 2x2
grid of shards, each holding its own couriers and the buildings touching
its region.  This example walks the shard subsystem end to end:

1. **Partitioned build** — ``ShardedWorkspace.from_points(...)`` routes
   every courier to its owning shard and replicates boundary-straddling
   buildings into each shard they overlap.
2. **The border-expansion router** — a query near a shard edge first
   runs on its home shard; when the answer's influence ball pokes across
   the edge, the router widens the consulted set and re-runs on a merged
   environment until the answer provably cannot change.  The routing is
   visible on ``result.stats.shard``.
3. **Updates and pinned monitors** — ``apply`` fans out only to affected
   shards; a standing query is pinned to its owning shards and re-homed
   when an update drags its influence ball across a border.
4. **Shard-parallel batches** — ``execute_many`` groups a workload by
   home shard and schedules the groups across a worker pool.

Every answer printed here is byte-identical to the unsharded workspace's
(checked live at the end).

Run:  python examples/sharded_serving.py
"""

from __future__ import annotations

import random

from repro import (
    CoknnQuery,
    OnnQuery,
    RangeQuery,
    RectObstacle,
    Segment,
    ShardedWorkspace,
    Workspace,
)

rng = random.Random(11)

# -- A small city: a block lattice and forty couriers -------------------
blocks = [RectObstacle(8 + 18 * gx, 8 + 18 * gy,
                       20 + 18 * gx, 16 + 18 * gy)
          for gx in range(5) for gy in range(5)]
couriers = []
while len(couriers) < 40:
    x, y = rng.uniform(0, 100), rng.uniform(0, 100)
    if not any(b.contains_interior(x, y) for b in blocks):
        couriers.append((len(couriers), (x, y)))

ws = Workspace.from_points(couriers, blocks)          # the unsharded twin
sws = ShardedWorkspace.from_points(couriers, blocks, shards=4)

print("=== 1. The partitioned build ===")
print(f"partitioner : {sws.partitioner.describe()}")
for sid, shard in enumerate(sws.shards):
    print(f"  shard {sid}: {shard.data_tree.size:2d} couriers, "
          f"{shard.obstacle_tree.size:2d} obstacles")
print(f"  boundary-straddling replicas: "
      f"{sws.stats.replicated_obstacles}")

print("\n=== 2. The border-expansion router ===")
# A rider standing near the middle of the city: the nearest couriers may
# live across a shard edge, so the router has to prove the border safe.
rider = OnnQuery((48.0, 52.0), knn=3, label="rider-1")
plan = sws.plan(rider)
print(plan.explain())
result = sws.execute(rider)
block = result.stats.shard
print(f"\nrouting     : consulted shards {sorted(block.by_shard)}, "
      f"{block.border_expansions} border expansion(s)")
for courier, dist in result.tuples():
    print(f"  courier {courier:2d} at obstructed distance {dist:6.2f}")

street = CoknnQuery(Segment(30, 50, 70, 50), 2, label="street-sweep")
sweep = sws.execute(street)
print(f"\n'{street.label}' crossed {sweep.stats.shard.fanout} shard(s); "
      f"{len(sweep.tuples())} owner intervals along the street")

print("\n=== 3. Updates and pinned monitors ===")
watch = sws.monitors.register(OnnQuery((12.0, 42.0), knn=2,
                                       label="west-watch"))
print(f"standing query pinned to shard(s) {sorted(watch.home)}")
sws.add_site(900, 12.5, 42.5)        # a new courier right next door
event = watch.events[-1]
print(f"new courier nearby -> action={event.action}, "
      f"delta adds {[p for p, _d in event.delta.added]}")
# Losing both western couriers drags the influence ball across the edge:
sws.remove_site(900, 12.5, 42.5)
for payload, _dist in list(watch.result.tuples()):
    loc = next((xy for p, xy in couriers if p == payload), None)
    if loc is not None:
        sws.remove_site(payload, *loc)
print(f"after the exodus the monitor re-homed to shard(s) "
      f"{sorted(watch.home)} (rehomes so far: {sws.stats.rehomes})")

print("\n=== 4. Shard-parallel batches ===")
batch = [OnnQuery((rng.uniform(5, 95), rng.uniform(5, 95)), knn=2,
                  label=f"req-{i}") for i in range(12)]
batch.append(RangeQuery((50.0, 50.0), 18.0, label="walking-radius"))
results = sws.execute_many(batch, workers=4)
print(f"{len(results)} requests answered; cumulative routing: "
      f"{sws.stats.describe()}")

print("\n=== The punchline: nobody can tell ===")
# Bring the unsharded twin to the same dataset, then compare all answers.
still_there = {p for shard in sws.shards
               for p, _rect in shard.data_tree.items()}
for p, xy in couriers:
    if p not in still_there:
        ws.remove_site(p, *xy)
checks = [rider, street, RangeQuery((50.0, 50.0), 18.0), *batch]
assert all(ws.execute(q).tuples() == sws.execute(q).tuples()
           for q in checks)
print(f"{len(checks)} queries re-checked against the unsharded "
      "workspace: identical tuples, every one.")
