#!/usr/bin/env python3
"""Serving queries in parallel over immutable workspace snapshots.

A ride-hailing backend answers a steady mix of standing questions —
"nearest drivers along this street", "k nearest to this rider", "who is
within walking distance" — while dispatch keeps mutating the city.  This
example walks the three concurrency tools the workspace offers:

1. **Snapshots** — ``ws.snapshot()`` pins one version of the indexes,
   the obstacle cache, and the shared visibility graph.  Queries executed
   through the snapshot either all see that version or raise
   ``SnapshotExpired`` — never a half-applied update.
2. **Parallel batches** — ``snapshot.execute_many(qs, workers=4)``
   partitions the batch's spatial locality buckets across a worker pool.
   Results are identical to serial execution, in submission order; only
   the wall clock changes.
3. **The async front** — ``ws.service.submit(q)`` returns a future
   immediately, so request handlers never block each other; updates
   applied between submissions wait only for in-flight queries (an
   "epoch wait"), and every query sees a consistent version.

Run:  python examples/concurrent_serving.py
"""

from __future__ import annotations

import random

from repro import (
    AddSite,
    CoknnQuery,
    ConnQuery,
    OnnQuery,
    RangeQuery,
    RectObstacle,
    Segment,
    SnapshotExpired,
    Workspace,
)
from repro.query.parallel import last_batch_stats

rng = random.Random(4)

# -- A small city: a block lattice and forty drivers --------------------
blocks = [RectObstacle(8 + 18 * gx, 8 + 18 * gy,
                       20 + 18 * gx, 16 + 18 * gy)
          for gx in range(5) for gy in range(5)]
drivers = []
while len(drivers) < 40:
    x, y = rng.uniform(0, 100), rng.uniform(0, 100)
    if not any(b.contains_interior(x, y) for b in blocks):
        drivers.append((f"driver-{len(drivers)}", (x, y)))

ws = Workspace.from_points(drivers, blocks)
ws.prefetch_all()  # warm the obstacle cache: no query reads the tree again

# -- 1. A consistent snapshot for one request burst ---------------------
requests = [
    ConnQuery(Segment(5, 30, 95, 30), label="main-street"),
    CoknnQuery(Segment(40, 5, 40, 95), 3, label="cross-town"),
    OnnQuery((52.0, 48.0), 3, label="rider-at-plaza"),
    RangeQuery((25.0, 70.0), 22.0, label="walkable"),
] + [OnnQuery((rng.uniform(5, 95), rng.uniform(5, 95)), 2,
              label=f"rider-{i}") for i in range(20)]

snap = ws.snapshot()
print(f"snapshot: {snap!r}")

serial = snap.execute_many(requests)

# -- 2. The same burst on a worker pool: identical answers --------------
parallel = snap.execute_many(requests, workers=4)
assert [r.tuples() for r in parallel] == [r.tuples() for r in serial]
stats = last_batch_stats()
print(f"parallel batch: {stats.describe()}")

# The planner prices intra-query parallelism too:
plan = snap.plan(CoknnQuery(Segment(10, 10, 90, 90), 2))
print("\n" + plan.explain())

# -- 3. Updates expire snapshots; the async front stays consistent ------
ws.apply([AddSite("driver-new", 50.0, 52.0)])
try:
    snap.execute(requests[0])
except SnapshotExpired as exc:
    print(f"\nexpired as expected: {exc}")

with ws.service.serve(workers=3) as svc:
    futures = [svc.submit(q) for q in requests[:6]]
    # Interleave an update with the in-flight queries: it waits for the
    # epoch to drain, then every later query sees the new driver.
    ws.apply([AddSite("driver-late", 55.0, 31.0)])
    answers = [f.result() for f in futures]
print(f"\nasync front answered {len(answers)} queries; "
      f"epoch waits so far: {ws.epoch_waits}, "
      f"snapshots taken: {ws.snapshots_taken}")
print(f"workspace now at version {ws.version} with "
      f"{ws.routing.stats.graph_clones} shared-graph clones provisioned")
