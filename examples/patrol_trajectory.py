#!/usr/bin/env python3
"""Patrol trajectory: CONN along a polyline + obstructed range queries.

Exercises the two extensions beyond the paper's core algorithms:

* ``trajectory_conn`` — the paper's "future work" trajectory variant: the
  obstructed NN for every point of a multi-leg patrol route;
* ``obstructed_range`` — all assets within a travel-distance budget of a
  checkpoint (the Zhang et al. query family the paper builds upon).

Scenario: a security robot patrols a warehouse with shelving rows
(obstacles); charging docks are the data points.  Along the whole patrol
the robot wants its nearest dock by actual travel distance, and at each
corner it checks which docks are within a 110 m emergency-return budget.

Run:  python examples/patrol_trajectory.py
"""

from __future__ import annotations

from repro import (
    RStarTree,
    RectObstacle,
    obstructed_range,
    trajectory_conn,
)


def main() -> None:
    # Shelving rows: long thin obstacles with aisles between them.
    shelves = []
    for row in range(5):
        y = 15 + row * 16
        shelves.append(RectObstacle(12, y, 88, y + 4))
    shelf_tree = RStarTree()
    for s in shelves:
        shelf_tree.insert(s, s.mbr())

    docks = {
        "dock-A": (5.0, 5.0),
        "dock-B": (95.0, 5.0),
        "dock-C": (5.0, 95.0),
        "dock-D": (95.0, 95.0),
        "dock-E": (50.0, 52.0),   # mid-warehouse, in an aisle
    }
    dock_tree = RStarTree()
    for name, (x, y) in docks.items():
        dock_tree.insert_point(name, x, y)

    # The patrol: up the left wall, across the middle aisle, down the right.
    route = [(8.0, 2.0), (8.0, 92.0), (92.0, 92.0), (92.0, 8.0)]

    print("=== nearest dock along the patrol route (travel distance) ===")
    patrol = trajectory_conn(dock_tree, shelf_tree, route)
    for owner, (lo, hi) in patrol.tuples():
        print(f"  route[{lo:6.1f}, {hi:6.1f}] -> {owner}")
    print(f"  total route length: {patrol.length:.1f} m, "
          f"{len(patrol.split_points())} handover points")

    print("\n=== docks within a 110 m emergency-return budget ===")
    for corner in route:
        reachable, _stats = obstructed_range(dock_tree, shelf_tree,
                                             corner[0], corner[1], 110.0)
        desc = ", ".join(f"{name} ({d:.0f} m)" for name, d in reachable) or "none"
        print(f"  at corner {corner}: {desc}")

    mid = patrol.length / 2
    print(f"\nHalfway along the patrol the nearest dock is "
          f"{patrol.owner_at(mid)!r} at {patrol.distance(mid):.1f} m of "
          f"actual travel (shelving forces detours).")


if __name__ == "__main__":
    main()
