#!/usr/bin/env python3
"""Single-tree (1T) indexing and buffer effects on an LA-like street grid.

Section 4.5 of the paper observes that indexing data points and obstacles in
ONE R*-tree usually beats two separate trees, because one best-first
traversal serves both roles and co-located points/obstacles share leaf
pages.  This script builds a downtown street grid (thin street MBRs), drops
taxis between the blocks, and answers the same COkNN workload three ways:

  1. two trees (2T), cold cache,
  2. one unified tree (1T), cold cache,
  3. one unified tree with an LRU buffer pool (25 % of the tree).

It prints the paper's metrics for each so the I/O story is visible.

Run:  python examples/city_blocks_1t.py
"""

from __future__ import annotations

import random

from repro import (
    LRUBuffer,
    RStarTree,
    build_unified_tree,
    coknn,
    coknn_single_tree,
)
from repro.bench.workloads import query_workload
from repro.datasets import la_street_obstacles, reject_inside_obstacles, uniform_points


def main() -> None:
    rng = random.Random(7)
    streets = la_street_obstacles(2000, rng)
    taxis = list(enumerate(
        reject_inside_obstacles(uniform_points(1000, rng), streets, rng)))

    rides = query_workload(random.Random(8), 4, 3.0, streets)
    k = 3

    # --- 2T: separate trees -------------------------------------------------
    data_tree = RStarTree.bulk_load(
        ((pid, __import__("repro").Rect.point(x, y)) for pid, (x, y) in taxis))
    street_tree = RStarTree.bulk_load((o, o.mbr()) for o in streets)

    def run_2t():
        stats = []
        for ride in rides:
            stats.append(coknn(data_tree, street_tree, ride, k=k).stats)
        return stats

    # --- 1T: one tree (optionally buffered) ---------------------------------
    unified = build_unified_tree(taxis, streets)

    def run_1t():
        return [coknn_single_tree(unified, ride, k=k).stats for ride in rides]

    def report(tag, stats):
        n = len(stats)
        faults = sum(s.io.page_faults for s in stats) / n
        io_ms = sum(s.io_time_ms for s in stats) / n
        npe = sum(s.npe for s in stats) / n
        noe = sum(s.noe for s in stats) / n
        print(f"{tag:<28} page faults/query: {faults:7.1f}   "
              f"I/O time: {io_ms:8.1f} ms   NPE: {npe:5.1f}   NOE: {noe:6.1f}")

    print(f"{len(taxis)} taxis, {len(streets)} street MBRs, "
          f"{len(rides)} rides, k={k}\n")
    report("2T (two trees, no buffer)", run_2t())
    report("1T (unified, no buffer)", run_1t())

    buffer = LRUBuffer(max(4, unified.num_pages * 25 // 100))
    unified.attach_buffer(buffer)
    run_1t()  # warm the pool
    report("1T + 25% LRU buffer (warm)", run_1t())
    print(f"\nbuffer hit rate: {buffer.hit_rate():.1%} "
          f"({buffer.hits} hits / {buffer.misses} misses)")


if __name__ == "__main__":
    main()
