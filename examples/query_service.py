#!/usr/bin/env python3
"""Query service: one workspace, many correlated queries, amortized I/O.

A delivery drone repeatedly re-plans while drifting along a corridor; each
re-plan is a CONN query over the same city.  Submitted as typed
:class:`repro.CoknnQuery` descriptions to one :class:`repro.Workspace`, the
queries share retrieved obstacles: the planner's ``explain()`` shows the
cold-vs-warm estimate, ``execute_many`` reorders the batch by spatial
locality, and later queries are served from the cache's coverage capsules —
same answers, a fraction of the I/O.

Run:  python examples/query_service.py
"""

from __future__ import annotations

import random

from repro import CoknnQuery, ConnQuery, Rect, RectObstacle, Segment, Workspace


def main() -> None:
    rng = random.Random(42)

    # A 1000 x 1000 city: 80 buildings, then 300 charging stations placed
    # outside them (a station inside a building would be unreachable).
    buildings = []
    while len(buildings) < 80:
        x, y = rng.uniform(0, 940), rng.uniform(0, 940)
        buildings.append(RectObstacle(x, y, x + rng.uniform(15, 60),
                                      y + rng.uniform(8, 25)))
    stations = []
    while len(stations) < 300:
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        if not any(b.contains_interior(x, y) for b in buildings):
            stations.append((f"station-{len(stations)}", (x, y)))

    ws = Workspace.from_points(stations, buildings, overfetch=2.0)

    # Prefetch the corridor the drone patrols, then fly.
    corridor = Rect(100, 480, 900, 560)
    loaded = ws.prefetch(corridor, margin=150.0)
    print(f"prefetched {loaded} of {len(buildings)} buildings around the "
          f"corridor\n")

    # Each re-plan is a typed query description; the planner picks the
    # algorithm and estimates obstacle I/O from the cache's capsules.
    replans = [CoknnQuery(Segment(150 + 40 * i, 500 + 3 * i,
                                  280 + 40 * i, 510 + 3 * i),
                          label=f"re-plan-{i}")
               for i in range(6)]
    print(ws.plan(replans[0]).explain(), "\n")

    # execute_many reorders by spatial locality behind the scenes but
    # returns results in submission order, each with its query attached.
    for result in ws.execute_many(replans):
        s = result.stats
        owners = [o for o, _ in result.tuples()]
        print(f"{result.query.label}: {len(owners)} result intervals, "
              f"obstacle reads={s.obstacle_reads}, "
              f"cache hits/misses={s.cache_hits}/{s.cache_misses}, "
              f"served={s.cache_served} of noe={s.noe}")

    cs = ws.cache_stats
    print(f"\nworkspace totals: {cs.inserted} obstacles cached, "
          f"{cs.prefetched} prefetched, hit rate {cs.hit_rate:.0%} "
          f"({cs.hits} hits / {cs.misses} misses), "
          f"{cs.served} obstacles served from cache")

    # The same street walked twice: the repeat costs zero obstacle reads,
    # and the planner knows it will be warm before executing.
    walk = ConnQuery(Segment(400, 300, 600, 310), label="street-walk")
    first = ws.execute(walk)
    assert ws.plan(walk).warm, "the second run should plan as a cache hit"
    again = ws.execute(walk)
    assert again.tuples() == first.tuples()
    print(f"\nrepeat query: first run read {first.stats.obstacle_reads} "
          f"obstacle pages, repeat read {again.stats.obstacle_reads} "
          f"(planned warm: est. {ws.plan(walk).est_obstacle_io} reads)")


if __name__ == "__main__":
    main()
